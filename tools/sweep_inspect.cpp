/// \file sweep_inspect.cpp
/// \brief Post-mortem inspector for sweep journals (obs/journal.hpp).
///
/// Replays a journal written by `cec_two_networks --journal-out` (or any
/// bench driver) into human-readable cost attributions:
///
///   sweep_inspect run.journal                    # text report
///   sweep_inspect --check run.journal            # validate (CI smoke)
///   sweep_inspect --timeline run.journal         # top-K class lifecycles
///   sweep_inspect --class 1234 run.journal       # one class's lifecycle
///   sweep_inspect --lanes run.journal            # per-worker task lanes
///   sweep_inspect --sat run.journal              # SAT hardness report
///   sweep_inspect --folded out.folded run.journal   # flamegraph.pl input
///   sweep_inspect --html report.html run.journal    # self-contained HTML
///   sweep_inspect --rewrite copy.jsonl run.journal  # binary <-> JSONL

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/inspect.hpp"
#include "obs/journal.hpp"
#include "simgen/guided_sim.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: sweep_inspect [options] <journal-file>\n"
               "  --check           validate the journal; exit 2 if invalid\n"
               "  --top K           rows in top-K tables (default 10)\n"
               "  --timeline        print lifecycles of the top-K classes\n"
               "  --class REP       print one class's lifecycle\n"
               "  --lanes           print the per-worker task timeline\n"
               "  --sat             print the SAT hardness report (cone\n"
               "                    fingerprints, restarts, LBD)\n"
               "  --folded FILE     write folded stacks for flamegraph "
               "tooling\n"
               "  --html FILE       write a self-contained HTML report\n"
               "  --rewrite FILE    re-serialize the journal (.jsonl selects "
               "JSONL)\n"
               "  --quiet           suppress the default text report\n");
}

/// Adapts simgen::core::strategy_name to the inspector's C callback.
const char* strategy_namer(std::uint8_t code) {
  using simgen::core::Strategy;
  for (const Strategy strategy : simgen::core::kAllStrategies) {
    if (static_cast<std::uint8_t>(strategy) == code) {
      // kAllStrategies names are string literals; the view is terminated.
      static thread_local std::string name;
      name = std::string(simgen::core::strategy_name(strategy));
      return name.c_str();
    }
  }
  return nullptr;
}

bool write_stream_file(const std::string& path, const char* what,
                       void (*writer)(std::ostream&,
                                      const simgen::obs::JournalReport&,
                                      const simgen::obs::InspectOptions&),
                       const simgen::obs::JournalReport& report,
                       const simgen::obs::InspectOptions& options) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "sweep_inspect: cannot write %s file %s\n", what,
                 path.c_str());
    return false;
  }
  writer(out, report, options);
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path, folded_path, html_path, rewrite_path;
  std::uint64_t class_rep = 0;
  bool check = false, timeline = false, lanes = false, quiet = false;
  bool sat = false;
  simgen::obs::InspectOptions options;
  options.strategy_namer = &strategy_namer;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sweep_inspect: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--check") check = true;
    else if (arg == "--timeline") timeline = true;
    else if (arg == "--lanes") lanes = true;
    else if (arg == "--sat") sat = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--top") options.top_k = std::atoi(value("--top"));
    else if (arg == "--class") class_rep = std::strtoull(value("--class"), nullptr, 10);
    else if (arg == "--folded") folded_path = value("--folded");
    else if (arg == "--html") html_path = value("--html");
    else if (arg == "--rewrite") rewrite_path = value("--rewrite");
    else if (arg == "--help" || arg == "-h") { usage(stdout); return 0; }
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "sweep_inspect: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 1;
    } else if (journal_path.empty()) {
      journal_path = arg;
    } else {
      std::fprintf(stderr, "sweep_inspect: extra argument %s\n", arg.c_str());
      return 1;
    }
  }
  if (journal_path.empty()) {
    usage(stderr);
    return 1;
  }
  if (options.top_k <= 0) options.top_k = 10;

  std::vector<simgen::obs::JournalEvent> events;
  std::string error;
  bool truncated = false;
  if (!simgen::obs::read_journal_file(journal_path, events, &error, &truncated)) {
    std::fprintf(stderr, "sweep_inspect: %s: %s\n", journal_path.c_str(),
                 error.c_str());
    return 2;
  }

  if (check) {
    if (!simgen::obs::check_journal(events, &error)) {
      std::fprintf(stderr, "sweep_inspect: %s: INVALID: %s\n",
                   journal_path.c_str(), error.c_str());
      return 2;
    }
    std::printf("%s: OK (%zu events%s)\n", journal_path.c_str(), events.size(),
                truncated ? ", truncated tail tolerated" : "");
  }

  if (!rewrite_path.empty() &&
      !simgen::obs::write_journal_file(rewrite_path, events)) {
    std::fprintf(stderr, "sweep_inspect: cannot write %s\n",
                 rewrite_path.c_str());
    return 2;
  }

  const simgen::obs::JournalReport report =
      simgen::obs::build_report(events, truncated);

  if (!quiet && !check) simgen::obs::write_text_report(std::cout, report, options);
  if (timeline || class_rep != 0)
    simgen::obs::write_timeline(std::cout, report, class_rep, options);
  if (lanes) simgen::obs::write_lanes(std::cout, report, options);
  if (sat) simgen::obs::write_sat_report(std::cout, report, options);
  if (!folded_path.empty() &&
      !write_stream_file(folded_path, "folded-stack",
                         &simgen::obs::write_folded_stacks, report, options))
    return 2;
  if (!html_path.empty() &&
      !write_stream_file(html_path, "HTML",
                         &simgen::obs::write_html_report, report, options))
    return 2;
  return 0;
}

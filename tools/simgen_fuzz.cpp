/// \file simgen_fuzz.cpp
/// \brief Differential fuzzing driver: generate circuits, cross-check
/// every engine, shrink and save any disagreement.
///
/// Usage:
///   simgen_fuzz [options]                  run a fuzz campaign
///   simgen_fuzz --replay repro.blif        re-run all oracles on a repro
///   simgen_fuzz --shrink-demo              minimize an injected fault
///
/// Campaign options:
///   --seed S        base seed (default 1); equal seeds give equal runs,
///                   byte-identical verdict logs included
///   --iters N       iterations (default 100)
///   --begin-iter N  start at iteration index N (iterations are pure
///                   functions of (seed, index), so --begin-iter N
///                   --iters 1 re-runs exactly a reported iteration)
///   --seconds T     stop after T seconds of wall time (0 = no limit)
///   --arm NAME      pin one strategy arm (default: cycle through all six;
///                   names as in the paper: RevS, SI+RD, AI+RD, AI+DC,
///                   AI+DC+MFFC, AI+DC+SCOAP)
///   --all-arms      run every arm on every pair (slow, max coverage)
///   --no-certify    skip DRAT certification of UNSAT verdicts
///   --inprocess-diff  rerun every sweeping oracle with solver
///                   inprocessing toggled on/off and fail on any verdict
///                   disagreement (the inprocessing differential leg)
///   --kernel-sweep  rerun every sweeping oracle under every available
///                   SIMD kernel at block widths 1 and 8 and fail unless
///                   the results are byte-identical (the width-sweep leg)
///   --no-shrink     keep full-size repro artifacts
///   --out-dir DIR   write repro artifacts here (default: fuzz-artifacts)
///   --log FILE      also write the verdict log to FILE
///   --quiet         no per-iteration echo
///
/// Telemetry options (shared with every driver in this repo):
///   --trace-out FILE, --metrics-out FILE, --journal-out FILE,
///   --progress SECONDS, --timeout SECONDS, --threads N
/// --threads N (N > 1) makes every sweeping oracle a differential leg:
/// each check runs on the sequential engine AND the N-worker parallel
/// engine, and any verdict disagreement is an oracle failure. Verdict-log
/// bytes match a single-thread campaign while the engines agree.
///
/// Exit status: 0 = clean, 1 = at least one oracle mismatch (repros
/// written), 2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "simgen_all.hpp"

using namespace simgen;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--iters N] [--seconds T] [--arm NAME]"
               " [--all-arms]\n"
               "       [--no-certify] [--inprocess-diff] [--kernel-sweep]"
               " [--no-shrink] [--out-dir DIR]"
               " [--log FILE] [--quiet]\n"
               "       %s --replay repro.blif\n"
               "       %s --shrink-demo [--seed S]\n",
               argv0, argv0, argv0);
  return 2;
}

bool parse_arm(const std::string& name, core::Strategy* arm) {
  for (const core::Strategy candidate : core::kAllStrategies) {
    if (core::strategy_name(candidate) == name) {
      *arm = candidate;
      return true;
    }
  }
  return false;
}

int run_replay(const std::string& path, std::uint64_t seed) {
  const net::Network network = io::read_blif_file(path);
  std::printf("replaying %s (%zu nodes, %zu PIs, %zu POs)\n", path.c_str(),
              network.num_nodes(), network.num_pis(), network.num_pos());
  int failures = 0;
  for (const fuzz::OracleResult& result :
       fuzz::replay_network(network, seed)) {
    std::printf("  %-16s %s%s%s\n", result.name.c_str(),
                result.pass ? "ok" : "FAIL", result.detail.empty() ? "" : ": ",
                result.detail.c_str());
    if (!result.pass) ++failures;
  }
  if (failures == 0) {
    std::printf("all oracles agree — failure did not reproduce\n");
    return 0;
  }
  std::printf("%d oracle(s) still failing\n", failures);
  return 1;
}

int run_shrink_demo(std::uint64_t seed, const std::string& out_dir) {
  // Build a failing circuit the way the campaign would: a random network,
  // an injected fault with a verified witness, and the miter of the two.
  // The miter is nonzero exactly on the fault's counterexamples; the demo
  // shows the delta debugger boiling a hundred-node miter down to the
  // handful of nodes that realize the injected difference.
  util::Rng rng(util::splitmix64(seed));
  fuzz::GenProfile profile;
  const net::Network base =
      fuzz::random_lut_network(rng, fuzz::random_lut_options(rng, profile));
  const fuzz::Mutant fault = fuzz::inject_fault(base, rng);
  const net::Network miter = sweep::make_miter(base, fault.network).network;
  std::printf("base: %zu nodes; injected %s; miter: %zu nodes\n",
              base.num_nodes(), fault.description.c_str(), miter.num_nodes());

  const auto still_fails = [seed](const net::Network& candidate) {
    return fuzz::miter_nonzero(candidate, seed);
  };
  const fuzz::ShrinkResult shrunk = fuzz::shrink_network(miter, still_fails);
  std::printf("shrunk to %zu nodes in %zu reductions (%zu predicate "
              "calls, %zu rounds); still NEQ const-0: %s\n",
              shrunk.network.num_nodes(), shrunk.reductions,
              shrunk.predicate_calls, shrunk.rounds,
              fuzz::miter_nonzero(shrunk.network, seed) ? "yes" : "NO");
  if (!out_dir.empty()) {
    fuzz::ReproInfo info;
    info.seed = seed;
    info.oracle = "shrink-demo";
    info.detail = fault.description;
    info.shrunk_from = miter.num_nodes();
    const std::string path = fuzz::write_blif_repro(
        out_dir, "shrink_demo_seed" + std::to_string(seed), info,
        shrunk.network);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::TelemetryCli telemetry(argc, argv);

  fuzz::CampaignOptions options;
  options.artifact_dir = "fuzz-artifacts";
  options.echo = stdout;
  options.num_threads = telemetry.num_threads();
  std::string replay_path;
  std::string log_path;
  bool shrink_demo = false;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(value("--seed"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      options.iterations = std::strtoull(value("--iters"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--begin-iter") == 0) {
      options.first_iteration =
          std::strtoull(value("--begin-iter"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      options.max_seconds = std::strtod(value("--seconds"), nullptr);
      if (options.max_seconds > 0.0)
        options.iterations = ~std::uint64_t{0};  // run until the clock
    } else if (std::strcmp(argv[i], "--arm") == 0) {
      const char* name = value("--arm");
      if (!parse_arm(name, &options.arm)) {
        std::fprintf(stderr, "%s: unknown strategy arm '%s'\n", argv[0], name);
        return 2;
      }
      options.cycle_arms = false;
    } else if (std::strcmp(argv[i], "--all-arms") == 0) {
      options.all_arms = true;
    } else if (std::strcmp(argv[i], "--no-certify") == 0) {
      options.certify = false;
    } else if (std::strcmp(argv[i], "--inprocess-diff") == 0) {
      options.inprocess_differential = true;
    } else if (std::strcmp(argv[i], "--kernel-sweep") == 0) {
      options.kernel_sweep = true;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      options.shrink = false;
    } else if (std::strcmp(argv[i], "--out-dir") == 0) {
      options.artifact_dir = value("--out-dir");
    } else if (std::strcmp(argv[i], "--log") == 0) {
      log_path = value("--log");
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      options.echo = nullptr;
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_path = value("--replay");
    } else if (std::strcmp(argv[i], "--shrink-demo") == 0) {
      shrink_demo = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], argv[i]);
      return usage(argv[0]);
    }
  }

  try {
    if (!replay_path.empty()) return run_replay(replay_path, options.seed);
    if (shrink_demo)
      return run_shrink_demo(options.seed, options.artifact_dir);

    const fuzz::CampaignResult result = fuzz::run_campaign(options);
    if (!log_path.empty()) {
      std::ofstream log(log_path, std::ios::binary);
      if (!log) {
        std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                     log_path.c_str());
        return 2;
      }
      log << result.verdict_log;
    }
    std::printf(
        "%llu iterations (%llu EQ pairs, %llu NEQ pairs, %llu round "
        "trips), %llu oracle checks, %llu failures%s\n",
        static_cast<unsigned long long>(result.iterations),
        static_cast<unsigned long long>(result.eq_pairs),
        static_cast<unsigned long long>(result.neq_pairs),
        static_cast<unsigned long long>(result.roundtrips),
        static_cast<unsigned long long>(result.checks),
        static_cast<unsigned long long>(result.failures),
        result.time_limited ? " (stopped by --seconds)" : "");
    for (const std::string& artifact : result.artifacts)
      std::printf("repro: %s\n", artifact.c_str());
    return result.failures == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: error: %s\n", argv[0], error.what());
    return 2;
  }
}

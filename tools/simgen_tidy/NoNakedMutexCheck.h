//===--- NoNakedMutexCheck.h - simgen-tidy -------------------------------===//
//
// simgen-no-naked-mutex: outside src/util, synchronization must go
// through the annotated util::Mutex / util::LockGuard / util::CondVar
// wrappers so Clang thread-safety analysis can see it.
//
//===----------------------------------------------------------------------===//
#ifndef SIMGEN_TIDY_NO_NAKED_MUTEX_CHECK_H
#define SIMGEN_TIDY_NO_NAKED_MUTEX_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

#include <string>

namespace simgen_tidy {

/// A raw std::mutex is invisible to -Wthread-safety: locking it guards
/// nothing, and data it protects can be annotated against nothing. One
/// naked mutex in a translation unit quietly exempts every structure it
/// protects from the analysis the rest of the codebase relies on. This
/// check flags variable and field declarations of the std locking
/// vocabulary (mutex, lock_guard, unique_lock, scoped_lock,
/// condition_variable, ...) everywhere except the wrapper implementation
/// itself (option AllowedFilesRegex, default matching src/util/).
class NoNakedMutexCheck : public clang::tidy::ClangTidyCheck {
 public:
  NoNakedMutexCheck(llvm::StringRef Name,
                    clang::tidy::ClangTidyContext *Context);

  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string AllowedFilesRegex;
};

}  // namespace simgen_tidy

#endif  // SIMGEN_TIDY_NO_NAKED_MUTEX_CHECK_H

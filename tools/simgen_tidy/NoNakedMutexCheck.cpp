//===--- NoNakedMutexCheck.cpp - simgen-tidy -----------------------------===//
#include "NoNakedMutexCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/Support/Regex.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace simgen_tidy {

NoNakedMutexCheck::NoNakedMutexCheck(llvm::StringRef Name,
                                     clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFilesRegex(Options.get("AllowedFilesRegex", "(^|/)src/util/")) {}

void NoNakedMutexCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void NoNakedMutexCheck::registerMatchers(MatchFinder *Finder) {
  // Canonical type so aliases (`using Guard = std::lock_guard<...>`) and
  // template specializations are both caught.
  const auto NakedSyncType = hasType(hasCanonicalType(hasDeclaration(
      namedDecl(hasAnyName("::std::mutex", "::std::timed_mutex",
                           "::std::recursive_mutex",
                           "::std::recursive_timed_mutex",
                           "::std::shared_mutex", "::std::shared_timed_mutex",
                           "::std::lock_guard", "::std::unique_lock",
                           "::std::scoped_lock", "::std::shared_lock",
                           "::std::condition_variable",
                           "::std::condition_variable_any")))));
  Finder->addMatcher(varDecl(NakedSyncType, unless(parmVarDecl()),
                             unless(isExpansionInSystemHeader()))
                         .bind("decl"),
                     this);
  Finder->addMatcher(
      fieldDecl(NakedSyncType, unless(isExpansionInSystemHeader()))
          .bind("decl"),
      this);
}

void NoNakedMutexCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Decl = Result.Nodes.getNodeAs<DeclaratorDecl>("decl");
  if (Decl == nullptr) return;

  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = SM.getExpansionLoc(Decl->getLocation());
  if (Loc.isInvalid()) return;
  const llvm::StringRef File = SM.getFilename(Loc);
  if (llvm::Regex(AllowedFilesRegex).match(File)) return;

  diag(Loc,
       "%0 declared with naked standard-library type %1, which "
       "-Wthread-safety cannot analyze; use the annotated util::Mutex / "
       "util::LockGuard / util::CondVar wrappers (src/util/mutex.hpp)")
      << Decl << Decl->getType();
}

}  // namespace simgen_tidy

//===--- ArenaRefCheck.h - simgen-tidy -----------------------------------===//
//
// simgen-arena-ref: the packed clause arena (sat::ClauseRef,
// sat::ClauseArena) is a solver-internal representation; code outside
// src/sat must go through the Solver public API.
//
//===----------------------------------------------------------------------===//
#ifndef SIMGEN_TIDY_ARENA_REF_CHECK_H
#define SIMGEN_TIDY_ARENA_REF_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace simgen_tidy {

/// Clause storage is a packed arena addressed by 32-bit refs whose
/// meaning changes on every garbage collection: a ClauseRef held across
/// solver calls dangles silently (the slot is reused, not poisoned), and
/// inprocessing makes collections far more frequent than learnt-DB
/// reduction alone ever did. Inside src/sat the invariants are local and
/// audited; any other layer naming sat::ClauseRef or sat::ClauseArena is
/// reaching into that representation and gets flagged. Use the Solver
/// API (add_clause, solve, model_value, stats) instead, or extend it.
class ArenaRefCheck : public clang::tidy::ClangTidyCheck {
 public:
  ArenaRefCheck(llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace simgen_tidy

#endif  // SIMGEN_TIDY_ARENA_REF_CHECK_H

//===--- ArenaRefCheck.cpp - simgen-tidy ---------------------------------===//
#include "ArenaRefCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace simgen_tidy {

namespace {

/// True when \p Loc expands inside the solver subsystem itself, where
/// the arena representation is fair game.
bool inSatSubsystem(SourceLocation Loc, const SourceManager &SM) {
  const StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  return File.contains("src/sat/") || File.contains("src\\sat\\");
}

}  // namespace

void ArenaRefCheck::registerMatchers(MatchFinder *Finder) {
  // Any written occurrence of the ref typedef or the arena class: locals,
  // parameters, return types, members, template arguments. auto-deduced
  // refs escape the net, but a ref can only flow in from an explicitly
  // typed source, which is where the diagnostic lands.
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(typedefNameDecl(
                  hasName("::simgen::sat::ClauseRef"))))))
          .bind("use"),
      this);
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(cxxRecordDecl(
                  hasName("::simgen::sat::ClauseArena"))))))
          .bind("use"),
      this);
}

void ArenaRefCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Use = Result.Nodes.getNodeAs<TypeLoc>("use");
  if (Use == nullptr) return;
  const SourceLocation Loc = Use->getBeginLoc();
  if (Loc.isInvalid()) return;
  const SourceManager &SM = *Result.SourceManager;
  if (SM.isInSystemHeader(Loc)) return;
  if (inSatSubsystem(Loc, SM)) return;

  diag(Loc,
       "raw clause arena reference outside src/sat: ClauseRefs dangle at "
       "the next arena collection; use the sat::Solver public API instead");
}

}  // namespace simgen_tidy

//===--- IdTypeMixingCheck.h - simgen-tidy -------------------------------===//
//
// simgen-id-type-mixing: flags expressions that mix two different strong
// ID spaces (util::StrongId specializations with different tags) through
// their implicit decay to the underlying integer.
//
//===----------------------------------------------------------------------===//
#ifndef SIMGEN_TIDY_ID_TYPE_MIXING_CHECK_H
#define SIMGEN_TIDY_ID_TYPE_MIXING_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace simgen_tidy {

/// StrongId construction from an integer is explicit and there is no
/// implicit StrongId<A> -> StrongId<B> conversion, so *function
/// boundaries* between ID spaces are already compile errors. What the
/// type system cannot catch is expression-level mixing: both sides of
/// `node + var` or `node == var` decay to std::uint32_t and the operator
/// applies to the raw integers. This check closes that gap: any binary
/// arithmetic or comparison whose two operands are different StrongId
/// specializations is diagnosed. Same-space arithmetic (offsets within
/// one index space) and explicit escapes (`id.value()`,
/// `static_cast<...>(id)`) stay allowed.
class IdTypeMixingCheck : public clang::tidy::ClangTidyCheck {
 public:
  IdTypeMixingCheck(llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace simgen_tidy

#endif  // SIMGEN_TIDY_ID_TYPE_MIXING_CHECK_H

//===--- PatternScopeCheck.h - simgen-tidy -------------------------------===//
//
// simgen-pattern-scope: every call to EquivClasses::refine must happen
// inside a function that establishes an obs::PatternScope, so class-split
// journal events carry a real PatternSource attribution.
//
//===----------------------------------------------------------------------===//
#ifndef SIMGEN_TIDY_PATTERN_SCOPE_CHECK_H
#define SIMGEN_TIDY_PATTERN_SCOPE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace simgen_tidy {

/// The journal's per-split attribution (which pattern source caused a
/// class to split — random, guided, counterexample...) is carried by a
/// thread-local set up by obs::PatternScope. A refine() call reached with
/// no scope on the stack logs PatternSource::kNone and silently corrupts
/// the Table 3 attribution data. The runtime lint (check::lint_journal
/// attribution cross-check) catches this after the fact; this check
/// catches it at analysis time.
///
/// Heuristic, deliberately local: the *enclosing function* of the
/// refine() call must declare a PatternScope local somewhere in its body.
/// Callers that inherit a scope from further up the stack are expected to
/// be rare and can annotate the call site with NOLINT(simgen-pattern-scope)
/// plus a comment naming the scope owner.
class PatternScopeCheck : public clang::tidy::ClangTidyCheck {
 public:
  PatternScopeCheck(llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace simgen_tidy

#endif  // SIMGEN_TIDY_PATTERN_SCOPE_CHECK_H

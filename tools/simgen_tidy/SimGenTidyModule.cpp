//===--- SimGenTidyModule.cpp - simgen-tidy ------------------------------===//
//
// Registers the SimGen-specific clang-tidy checks. Built as an
// out-of-tree plugin and loaded into a stock clang-tidy:
//
//   clang-tidy --load=SimGenTidyModule.so --checks='simgen-*' file.cpp -- ...
//
// The plugin links no LLVM/Clang libraries; every symbol resolves from
// the hosting clang-tidy binary, which is why the plugin must be built
// against the headers of the same clang-tidy major version that loads it
// (the CI leg pins both to one toolchain).
//
//===----------------------------------------------------------------------===//
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "ArenaRefCheck.h"
#include "IdTypeMixingCheck.h"
#include "JournalEventLayoutCheck.h"
#include "NoNakedMutexCheck.h"
#include "PatternScopeCheck.h"

namespace simgen_tidy {

class SimGenTidyModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<ArenaRefCheck>("simgen-arena-ref");
    Factories.registerCheck<IdTypeMixingCheck>("simgen-id-type-mixing");
    Factories.registerCheck<JournalEventLayoutCheck>(
        "simgen-journal-event-layout");
    Factories.registerCheck<NoNakedMutexCheck>("simgen-no-naked-mutex");
    Factories.registerCheck<PatternScopeCheck>("simgen-pattern-scope");
  }
};

}  // namespace simgen_tidy

namespace clang::tidy {

static ClangTidyModuleRegistry::Add<simgen_tidy::SimGenTidyModule> X(
    "simgen-module", "SimGen equivalence-checker specific checks.");

// Referenced by the plugin loader to keep the registration object alive.
volatile int SimGenTidyModuleAnchorSource = 0;

}  // namespace clang::tidy

//===--- JournalEventLayoutCheck.cpp - simgen-tidy -----------------------===//
#include "JournalEventLayoutCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/RecordLayout.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace simgen_tidy {

namespace {

/// The journal v1 record layout, spelled independently of the struct
/// definition (that independence is the point of the check). Offsets and
/// widths in bits.
struct ExpectedField {
  llvm::StringRef name;
  unsigned offset_bits;
  unsigned width_bits;
};

constexpr ExpectedField kExpectedLayout[] = {
    {"t_ns", 0, 64},    {"a", 64, 64},      {"b", 128, 64},
    {"v0", 192, 64},    {"v1", 256, 64},    {"v2", 320, 64},
    {"v3", 384, 64},    {"dur_us", 448, 32}, {"flags", 480, 16},
    {"kind", 496, 8},   {"code", 504, 8},
};
constexpr unsigned kExpectedSizeBits = 512;  // 64 bytes

}  // namespace

void JournalEventLayoutCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxRecordDecl(hasName("::simgen::obs::JournalEvent"),
                                   isDefinition())
                         .bind("record"),
                     this);
}

void JournalEventLayoutCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Record = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
  if (Record == nullptr || Record->isDependentType() ||
      !Record->isCompleteDefinition())
    return;
  ASTContext &Ctx = *Result.Context;

  if (!Record->isTriviallyCopyable() || !Record->isStandardLayout()) {
    diag(Record->getLocation(),
         "JournalEvent must stay trivially copyable and standard-layout; "
         "journal files are read back by memcpy");
    return;
  }

  const uint64_t SizeBits = Ctx.getTypeSize(Ctx.getRecordType(Record));
  if (SizeBits != kExpectedSizeBits) {
    diag(Record->getLocation(),
         "JournalEvent is %0 bytes; the journal v1 record format is %1 "
         "bytes — bump the format version and update readers before "
         "changing the record")
        << static_cast<unsigned>(SizeBits / 8)
        << static_cast<unsigned>(kExpectedSizeBits / 8);
    return;
  }

  const ASTRecordLayout &Layout = Ctx.getASTRecordLayout(Record);
  unsigned Index = 0;
  for (const FieldDecl *Field : Record->fields()) {
    if (Index >= std::size(kExpectedLayout)) {
      diag(Field->getLocation(),
           "unexpected extra field '%0' in JournalEvent; the journal v1 "
           "record has exactly %1 fields")
          << Field->getName()
          << static_cast<unsigned>(std::size(kExpectedLayout));
      return;
    }
    const ExpectedField &Expected = kExpectedLayout[Index];
    const uint64_t Offset = Layout.getFieldOffset(Field->getFieldIndex());
    const uint64_t Width = Ctx.getTypeSize(Field->getType());
    if (Field->getName() != Expected.name || Offset != Expected.offset_bits ||
        Width != Expected.width_bits) {
      diag(Field->getLocation(),
           "JournalEvent field #%0 is '%1' (%2 bits at bit offset %3); the "
           "journal v1 record expects '%4' (%5 bits at bit offset %6)")
          << Index << Field->getName() << static_cast<unsigned>(Width)
          << static_cast<unsigned>(Offset) << Expected.name
          << Expected.width_bits << Expected.offset_bits;
      return;
    }
    ++Index;
  }
  if (Index != std::size(kExpectedLayout)) {
    diag(Record->getLocation(),
         "JournalEvent has %0 fields; the journal v1 record has %1")
        << Index << static_cast<unsigned>(std::size(kExpectedLayout));
  }
}

}  // namespace simgen_tidy

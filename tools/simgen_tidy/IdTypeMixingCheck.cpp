//===--- IdTypeMixingCheck.cpp - simgen-tidy -----------------------------===//
#include "IdTypeMixingCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace simgen_tidy {

namespace {

/// Returns the StrongId specialization behind \p Type, or null if the
/// type is not a simgen::util::StrongId instantiation.
const ClassTemplateSpecializationDecl *strongIdSpecialization(QualType Type) {
  const auto *Record = Type.getCanonicalType()->getAs<RecordType>();
  if (Record == nullptr) return nullptr;
  const auto *Spec =
      dyn_cast<ClassTemplateSpecializationDecl>(Record->getDecl());
  if (Spec == nullptr) return nullptr;
  if (Spec->getName() != "StrongId") return nullptr;
  const DeclContext *Ctx = Spec->getDeclContext();
  const auto *Util = dyn_cast_or_null<NamespaceDecl>(Ctx);
  if (Util == nullptr || Util->getName() != "util") return nullptr;
  const auto *Simgen =
      dyn_cast_or_null<NamespaceDecl>(Util->getDeclContext());
  return Simgen != nullptr && Simgen->getName() == "simgen" ? Spec : nullptr;
}

/// Peels the implicit decay (the `operator Underlying()` conversion call
/// the compiler inserts) off an operand and returns the pre-decay
/// expression. Explicit escapes — `id.value()`, `static_cast<...>(id)` —
/// are deliberately NOT peeled: writing them is how a mixed expression
/// declares itself intentional.
const Expr *stripImplicitDecay(const Expr *E) {
  E = E->IgnoreParenImpCasts();
  if (const auto *Call = dyn_cast<CXXMemberCallExpr>(E)) {
    if (isa_and_nonnull<CXXConversionDecl>(Call->getMethodDecl()))
      return Call->getImplicitObjectArgument()->IgnoreParenImpCasts();
  }
  return E;
}

bool isMixableOpcode(BinaryOperatorKind Op) {
  switch (Op) {
    case BO_Add:
    case BO_Sub:
    case BO_Mul:
    case BO_Div:
    case BO_Rem:
    case BO_Shl:
    case BO_Shr:
    case BO_And:
    case BO_Or:
    case BO_Xor:
    case BO_LT:
    case BO_GT:
    case BO_LE:
    case BO_GE:
    case BO_EQ:
    case BO_NE:
    case BO_Cmp:
      return true;
    default:
      return false;
  }
}

}  // namespace

void IdTypeMixingCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      binaryOperator(unless(isExpansionInSystemHeader())).bind("op"), this);
}

void IdTypeMixingCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Op = Result.Nodes.getNodeAs<BinaryOperator>("op");
  if (Op == nullptr || !isMixableOpcode(Op->getOpcode())) return;

  const Expr *Lhs = stripImplicitDecay(Op->getLHS());
  const Expr *Rhs = stripImplicitDecay(Op->getRHS());
  const auto *LhsId = strongIdSpecialization(Lhs->getType());
  const auto *RhsId = strongIdSpecialization(Rhs->getType());
  if (LhsId == nullptr || RhsId == nullptr) return;
  if (Result.Context->hasSameType(Lhs->getType().getCanonicalType(),
                                  Rhs->getType().getCanonicalType()))
    return;

  diag(Op->getOperatorLoc(),
       "binary expression mixes distinct ID spaces %0 and %1 through their "
       "integer decay; convert one side explicitly (.value()) if the mix is "
       "intentional")
      << Lhs->getType() << Rhs->getType();
}

}  // namespace simgen_tidy

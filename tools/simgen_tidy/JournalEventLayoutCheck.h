//===--- JournalEventLayoutCheck.h - simgen-tidy -------------------------===//
//
// simgen-journal-event-layout: the on-disk journal record
// (obs::JournalEvent) must stay a 64-byte trivially-copyable POD with the
// exact field offsets existing journal files were written with.
//
//===----------------------------------------------------------------------===//
#ifndef SIMGEN_TIDY_JOURNAL_EVENT_LAYOUT_CHECK_H
#define SIMGEN_TIDY_JOURNAL_EVENT_LAYOUT_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace simgen_tidy {

/// Journal files are raw arrays of JournalEvent records; readers
/// (journal_load, sweep_inspect, offline analysis scripts) memcpy them
/// back. The header's static_asserts pin size and trivial copyability,
/// but not individual field offsets — reordering two same-size fields
/// compiles clean and silently corrupts every archived journal. This
/// check re-derives the record layout from the AST and compares it
/// against an independently spelled offset table, so any drift needs a
/// deliberate two-place edit (struct + check) and a format-version bump.
class JournalEventLayoutCheck : public clang::tidy::ClangTidyCheck {
 public:
  JournalEventLayoutCheck(llvm::StringRef Name,
                          clang::tidy::ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace simgen_tidy

#endif  // SIMGEN_TIDY_JOURNAL_EVENT_LAYOUT_CHECK_H

//===--- PatternScopeCheck.cpp - simgen-tidy -----------------------------===//
#include "PatternScopeCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace simgen_tidy {

namespace {

/// Walks up the dynamic AST parents to the function (or lambda operator())
/// that lexically contains \p Node.
const FunctionDecl *enclosingFunction(const DynTypedNode &Node,
                                      ASTContext &Ctx) {
  for (const DynTypedNode &Parent : Ctx.getParents(Node)) {
    if (const auto *Func = Parent.get<FunctionDecl>()) return Func;
    if (const FunctionDecl *Up = enclosingFunction(Parent, Ctx)) return Up;
  }
  return nullptr;
}

}  // namespace

void PatternScopeCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasName("refine"),
              ofClass(cxxRecordDecl(hasName("::simgen::sim::EquivClasses"))))))
          .bind("call"),
      this);
}

void PatternScopeCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
  if (Call == nullptr) return;
  ASTContext &Ctx = *Result.Context;

  const FunctionDecl *Func =
      enclosingFunction(DynTypedNode::create(*Call), Ctx);
  if (Func == nullptr || !Func->hasBody()) return;

  // Any local of type obs::PatternScope anywhere in the enclosing
  // function's body counts — scope objects placed in an outer block or
  // before a loop cover refine() calls further in.
  const auto ScopeLocals = match(
      findAll(varDecl(hasType(hasCanonicalType(recordType(hasDeclaration(
                  cxxRecordDecl(hasName("::simgen::obs::PatternScope")))))))
                  .bind("scope")),
      *Func->getBody(), Ctx);
  if (!ScopeLocals.empty()) return;

  diag(Call->getExprLoc(),
       "EquivClasses::refine called with no obs::PatternScope in the "
       "enclosing function; class-split journal events will carry "
       "PatternSource::kNone (if a caller owns the scope, add "
       "NOLINT(simgen-pattern-scope) with a comment naming it)");
}

}  // namespace simgen_tidy

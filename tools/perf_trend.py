#!/usr/bin/env python3
"""Perf-trend radar over per-run BENCH_*.json files.

Usage:
  perf_trend.py CANDIDATE_DIR --trend-dir bench/trend [options]

Reads every BENCH_<benchmark>__<strategy>.json produced by a bench run
(CANDIDATE_DIR), compares its wall_seconds and pool_utilization against a
rolling baseline kept in <trend-dir>/trend.jsonl, and then appends the
run to the history. The baseline for each (cell, metric) is the median of
the last --window runs that recorded that cell, so one noisy run never
poisons the gate and genuine drift moves the baseline slowly.

A cell regresses when
  * wall_seconds  > median * (1 + --band) + --atol-seconds, or
  * pool_utilization drops more than --util-band below its median
    (only gated when the baseline median is at least --util-floor, i.e.
    when the run actually exercised the profiled thread pool), or
  * any --gate FIELD[:BAND[:ATOL]] field exceeds its own
    median * (1 + BAND) + ATOL (BAND/ATOL default to --band and
    --atol-seconds). --gate is repeatable and works for any numeric
    BENCH_*.json field where higher is worse — CI uses it to watch
    sat_wall_seconds. A gate whose field is missing from this run's
    JSON, or absent from every history row in the window (history
    predating the field), is skipped with a printed notice, never an
    error.

Getting faster (or more utilized) is never a failure. With no usable
history the run seeds the baseline and passes. A regressed run is NOT
appended to the history (it would drag the rolling median toward the
regression); pass --append-always to record it anyway.

Exit codes: 0 = within the noise band (history updated), 1 = usage or
I/O error (missing candidate dir, unreadable history), 2 = regression.
"""
import argparse
import json
import statistics
import sys
import time
from pathlib import Path

WALL_KEY = "wall_seconds"
UTIL_KEY = "pool_utilization"
# Carried into the history for context but never gated (counts are
# compare_bench_json.py's job; RSS and steal totals are informational).
EXTRA_KEYS = ("peak_rss_mb", "pool_tasks", "pool_steal_successes",
              "sat_calls", "num_threads")


def load_cells(candidate_dir, gate_fields=()):
    """Maps 'benchmark__strategy' -> recorded metrics for one run."""
    cells = {}
    for path in sorted(candidate_dir.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"error: cannot read {path}: {error}")
        name = path.stem[len("BENCH_"):]
        cell = {}
        for key in (WALL_KEY, UTIL_KEY) + EXTRA_KEYS + tuple(gate_fields):
            if key in data:
                cell[key] = data[key]
        cells[name] = cell
    return cells


def parse_gate(spec, default_band, default_atol):
    """'FIELD[:BAND[:ATOL]]' -> (field, band, atol)."""
    parts = spec.split(":")
    if len(parts) > 3 or not parts[0]:
        raise SystemExit(f"error: bad --gate spec '{spec}' "
                         f"(want FIELD[:BAND[:ATOL]])")
    band, atol = default_band, default_atol
    try:
        if len(parts) > 1 and parts[1]:
            band = float(parts[1])
        if len(parts) > 2 and parts[2]:
            atol = float(parts[2])
    except ValueError:
        raise SystemExit(f"error: bad --gate spec '{spec}': BAND and ATOL "
                         f"must be numbers")
    return parts[0], band, atol


def read_history(path):
    """Past runs, oldest first. A missing file is an empty history; a
    truncated final line (crashed writer) is tolerated with a warning."""
    if not path.exists():
        return []
    runs = []
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise SystemExit(f"error: cannot read trend history {path}: {error}")
    for number, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            runs.append(json.loads(line))
        except json.JSONDecodeError:
            if number == len(lines):
                print(f"warning: ignoring truncated final history line in "
                      f"{path}", file=sys.stderr)
                continue
            raise SystemExit(
                f"error: corrupt trend history {path} at line {number}")
    return runs


def baseline_median(history, cell, key, window):
    values = []
    for run in history[-window:]:
        value = run.get("cells", {}).get(cell, {}).get(key)
        if isinstance(value, (int, float)):
            values.append(float(value))
    return statistics.median(values) if values else None


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("candidate_dir", type=Path,
                        help="directory of this run's BENCH_*.json files")
    parser.add_argument("--trend-dir", type=Path, required=True,
                        help="history directory (holds trend.jsonl)")
    parser.add_argument("--window", type=int, default=10,
                        help="rolling-baseline window in runs (default 10)")
    parser.add_argument("--band", type=float, default=0.15,
                        help="relative wall-time noise band (default 0.15)")
    parser.add_argument("--atol-seconds", type=float, default=0.05,
                        help="absolute wall-time slack so micro-cells never "
                             "flake (default 0.05)")
    parser.add_argument("--util-band", type=float, default=0.15,
                        help="tolerated absolute pool-utilization drop "
                             "(default 0.15)")
    parser.add_argument("--util-floor", type=float, default=0.05,
                        help="gate utilization only when its baseline median "
                             "is at least this (default 0.05)")
    parser.add_argument("--gate", action="append", default=[],
                        metavar="FIELD[:BAND[:ATOL]]",
                        help="additionally gate a numeric BENCH json field "
                             "(higher is worse) against its rolling median; "
                             "repeatable. BAND/ATOL default to --band and "
                             "--atol-seconds. Missing fields are skipped "
                             "with a notice.")
    parser.add_argument("--label", default="",
                        help="free-form tag recorded with this run (e.g. a "
                             "commit hash)")
    parser.add_argument("--append-always", action="store_true",
                        help="record the run in the history even when it "
                             "regressed")
    parser.add_argument("--no-append", action="store_true",
                        help="gate only; leave the history untouched")
    args = parser.parse_args()

    gates = [parse_gate(spec, args.band, args.atol_seconds)
             for spec in args.gate]

    if not args.candidate_dir.is_dir():
        print(f"error: candidate directory {args.candidate_dir} does not "
              f"exist", file=sys.stderr)
        return 1
    cells = load_cells(args.candidate_dir,
                       gate_fields=[field for field, _, _ in gates])
    if not cells:
        print(f"error: no BENCH_*.json files in {args.candidate_dir}",
              file=sys.stderr)
        return 1

    history_path = args.trend_dir / "trend.jsonl"
    history = read_history(history_path)

    regressions = 0
    gated = 0
    for name, cell in sorted(cells.items()):
        wall = cell.get(WALL_KEY)
        base_wall = baseline_median(history, name, WALL_KEY, args.window)
        if isinstance(wall, (int, float)) and base_wall is not None:
            gated += 1
            limit = base_wall * (1.0 + args.band) + args.atol_seconds
            if wall > limit:
                print(f"REGRESSION {name}: wall {wall:.3f}s > "
                      f"{limit:.3f}s (median {base_wall:.3f}s of last "
                      f"{args.window}, band {args.band:.0%} "
                      f"+{args.atol_seconds}s)")
                regressions += 1
            else:
                print(f"ok         {name}: wall {wall:.3f}s "
                      f"(median {base_wall:.3f}s, limit {limit:.3f}s)")
        util = cell.get(UTIL_KEY)
        base_util = baseline_median(history, name, UTIL_KEY, args.window)
        if (isinstance(util, (int, float)) and base_util is not None
                and base_util >= args.util_floor):
            if base_util - util > args.util_band:
                print(f"REGRESSION {name}: pool utilization {util:.2f} "
                      f"dropped more than {args.util_band:.2f} below its "
                      f"median {base_util:.2f}")
                regressions += 1
        for field, band, atol in gates:
            value = cell.get(field)
            if not isinstance(value, (int, float)):
                print(f"notice     {name}: no '{field}' in this run's json; "
                      f"gate skipped")
                continue
            base = baseline_median(history, name, field, args.window)
            if base is None:
                if history:
                    print(f"notice     {name}: no '{field}' baseline in the "
                          f"last {args.window} runs (history predates the "
                          f"field?); gate skipped")
                continue
            gated += 1
            limit = base * (1.0 + band) + atol
            if value > limit:
                print(f"REGRESSION {name}: {field} {value:.3f} > "
                      f"{limit:.3f} (median {base:.3f} of last "
                      f"{args.window}, band {band:.0%} +{atol})")
                regressions += 1
            else:
                print(f"ok         {name}: {field} {value:.3f} "
                      f"(median {base:.3f}, limit {limit:.3f})")

    if gated == 0:
        print(f"no usable baseline in {history_path} yet; seeding it with "
              f"{len(cells)} cells")

    record = {"t": time.time(), "label": args.label, "cells": cells}
    append = not args.no_append and (regressions == 0 or args.append_always)
    if append:
        args.trend_dir.mkdir(parents=True, exist_ok=True)
        with history_path.open("a") as out:
            out.write(json.dumps(record, sort_keys=True) + "\n")

    if regressions:
        print(f"{regressions} perf regressions across {len(cells)} cells "
              f"(history {'updated' if append else 'NOT updated'})",
              file=sys.stderr)
        return 2
    print(f"{len(cells)} cells within the noise band; history at "
          f"{history_path} now {len(history) + (1 if append else 0)} runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Scheduler-profiling tests: the thread pool's per-worker accumulators,
// the obs-layer pool.* export (PoolProfileScope), the worker-lane
// inspector round trip, and the Histogram merge primitive backing the
// pool.task_us export. Everything except the inspector model is
// telemetry-only; under SIMGEN_NO_TELEMETRY the stub checks at the
// bottom run instead.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/inspect.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/pool_obs.hpp"
#include "util/thread_pool.hpp"

namespace simgen {
namespace {

obs::JournalEvent lane_event(obs::EventKind kind, std::uint8_t code,
                             std::uint64_t t_ns, std::uint64_t a,
                             std::uint64_t b, std::uint32_t dur_us) {
  obs::JournalEvent event;
  event.kind = kind;
  event.code = code;
  event.t_ns = t_ns;
  event.a = a;
  event.b = b;
  event.dur_us = dur_us;
  return event;
}

// ---------------------------------------------------------------------------
// Inspector lane model (compiled in every configuration: the inspector
// replays journals recorded elsewhere).

TEST(WorkerLanes, BuildReportAggregatesTaskRunsPerWorker) {
  std::vector<obs::JournalEvent> events;
  // Worker 0 runs tasks 0 and 2, worker 1 runs task 1; stamps are at
  // task *end*.
  events.push_back(lane_event(obs::EventKind::kTaskRun, 0, 2'000'000,
                              /*task=*/0, /*worker=*/0, /*dur_us=*/2000));
  events.push_back(lane_event(obs::EventKind::kTaskRun, 0, 3'000'000, 1, 1,
                              3000));
  events.push_back(lane_event(obs::EventKind::kTaskRun, 1, 4'000'000, 2, 0,
                              1000));
  obs::JournalEvent stats = lane_event(obs::EventKind::kWorkerStats, 0,
                                       4'100'000, /*worker=*/0, /*tasks=*/2,
                                       /*lock blocks=*/7);
  stats.v0 = 5;     // steal attempts
  stats.v1 = 3;     // steal successes
  stats.v2 = 3000;  // busy us
  stats.v3 = 1000;  // idle us
  events.push_back(stats);

  const obs::JournalReport report = obs::build_report(events);
  EXPECT_EQ(report.task_runs, 3u);
  EXPECT_EQ(report.worker_stats, 1u);
  ASSERT_EQ(report.lanes.size(), 2u);
  const obs::WorkerLane& lane0 = report.lanes.at(0);
  EXPECT_EQ(lane0.tasks_run, 2u);
  EXPECT_EQ(lane0.busy_us, 3000u);
  EXPECT_TRUE(lane0.has_stats);
  EXPECT_EQ(lane0.steal_attempts, 5u);
  EXPECT_EQ(lane0.steal_successes, 3u);
  EXPECT_EQ(lane0.lock_blocks, 7u);
  ASSERT_EQ(lane0.timeline.size(), 2u);
  EXPECT_EQ(lane0.timeline[0].dur_us, 2000u);
  const obs::WorkerLane& lane1 = report.lanes.at(1);
  EXPECT_EQ(lane1.tasks_run, 1u);
  EXPECT_FALSE(lane1.has_stats);
}

TEST(WorkerLanes, TextLanesParseBackToTheReport) {
  // The documented lane-line format is a contract: tooling greps the
  // summary fields back out. Render a synthetic report and re-parse it.
  std::vector<obs::JournalEvent> events;
  events.push_back(
      lane_event(obs::EventKind::kTaskRun, 0, 10'000'000, 0, 0, 9000));
  events.push_back(
      lane_event(obs::EventKind::kTaskRun, 0, 12'000'000, 1, 1, 4000));
  obs::JournalEvent stats =
      lane_event(obs::EventKind::kWorkerStats, 0, 12'100'000, 1, 1, 2);
  stats.v0 = 4;
  stats.v1 = 1;
  stats.v2 = 4000;
  stats.v3 = 8000;
  events.push_back(stats);
  const obs::JournalReport report = obs::build_report(events);

  std::ostringstream out;
  obs::write_lanes(out, report, obs::InspectOptions{});
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  std::size_t workers = 0;
  unsigned long long header_tasks = 0;
  ASSERT_EQ(std::sscanf(line.c_str(), "worker lanes: %zu workers, %llu tasks",
                        &workers, &header_tasks),
            2)
      << line;
  EXPECT_EQ(workers, report.lanes.size());
  EXPECT_EQ(header_tasks, report.task_runs);

  // The pooled task-latency percentile line (present whenever any lane
  // recorded a task) sits between the header and the lanes.
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("task latency: p50 ", 0), 0u) << line;
  EXPECT_NE(line.find("p90"), std::string::npos) << line;
  EXPECT_NE(line.find("p99"), std::string::npos) << line;

  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    unsigned long long worker = 0, tasks = 0, steals_ok = 0, steals_try = 0,
                       blocks = 0;
    double busy = 0.0;
    char cells[80] = {0};
    ASSERT_EQ(std::sscanf(line.c_str(),
                          " w%llu |%79[#.]| tasks %llu busy %lf%% steals "
                          "%llu/%llu lock-blocks %llu",
                          &worker, cells, &tasks, &busy, &steals_ok,
                          &steals_try, &blocks),
              7)
        << "unparseable lane line: " << line;
    ASSERT_EQ(std::string(cells).size(), 64u) << "lane is 64 cells wide";
    const auto lane = report.lanes.find(worker);
    ASSERT_NE(lane, report.lanes.end());
    EXPECT_EQ(tasks, lane->second.tasks_run);
    EXPECT_EQ(steals_ok, lane->second.steal_successes);
    EXPECT_EQ(steals_try, lane->second.steal_attempts);
    EXPECT_EQ(blocks, lane->second.lock_blocks);
    EXPECT_GE(busy, 0.0);
    EXPECT_LE(busy, 100.0);
    ++parsed;
  }
  EXPECT_EQ(parsed, report.lanes.size());
}

TEST(WorkerLanes, EmptyJournalSaysWhy) {
  const obs::JournalReport report = obs::build_report({});
  std::ostringstream out;
  obs::write_lanes(out, report, obs::InspectOptions{});
  EXPECT_NE(out.str().find("no task_run events"), std::string::npos);
}

TEST(WorkerLanes, CheckJournalRejectsOutOfRangeTaskKind) {
  std::vector<obs::JournalEvent> events;
  events.push_back(lane_event(obs::EventKind::kTaskRun, 3, 1000, 0, 0, 1));
  std::string error;
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("task_run"), std::string::npos) << error;
  events.front().code = 2;
  EXPECT_TRUE(obs::check_journal(events, &error)) << error;
}

TEST(Histogram, MergeFromFoldsExternalBuckets) {
  obs::Histogram histogram;
  histogram.observe(3);
  std::array<std::uint64_t, obs::Histogram::kNumBuckets> external{};
  external[obs::Histogram::bucket_of(5)] = 2;
  histogram.merge_from(external.data(), external.size(), /*count=*/2,
                       /*sum=*/10);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 13u);
  EXPECT_EQ(histogram.buckets()[obs::Histogram::bucket_of(3)], 1u);
  EXPECT_EQ(histogram.buckets()[obs::Histogram::bucket_of(5)], 2u);
}

#ifndef SIMGEN_NO_TELEMETRY

// ---------------------------------------------------------------------------
// ThreadPool profiling (the util-layer accumulators).

TEST(PoolProfile, CountsEveryTaskAcrossBatches) {
  util::ThreadPool pool(4);
  for (int batch = 0; batch < 5; ++batch)
    pool.run_tasks(40, [](std::size_t, unsigned) {});
  const util::PoolProfile profile = pool.profile();
  EXPECT_EQ(profile.batches, 5u);
  ASSERT_EQ(profile.workers.size(), 4u);
  const util::WorkerProfile totals = profile.totals();
  EXPECT_EQ(totals.tasks, 200u);
  EXPECT_EQ(pool.pending_tasks(), 0u);
  EXPECT_GT(totals.lock_acquires, 0u);
  EXPECT_GE(totals.steal_attempts, totals.steal_successes);
  // Every own-queue pop samples that queue's depth.
  EXPECT_GT(totals.queue_depth_samples, 0u);
  EXPECT_GE(totals.queue_depth_sum, totals.queue_depth_samples);
  EXPECT_GE(totals.max_queue_depth, 1u);
  // Each executed task lands in exactly one latency bucket.
  std::uint64_t bucketed = 0;
  for (const std::uint64_t bucket : totals.task_us_buckets) bucketed += bucket;
  EXPECT_EQ(bucketed, totals.tasks);
}

TEST(PoolProfile, BusyTimeCoversTheTaskBodies) {
  util::ThreadPool pool(2);
  pool.run_tasks(8, [](std::size_t, unsigned) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  const util::WorkerProfile totals = pool.profile().totals();
  EXPECT_GE(totals.busy_ns, 8ull * 2'000'000) << "8 tasks x 2ms sleeps";
  EXPECT_GE(totals.task_us_sum, 8ull * 2'000);
}

TEST(PoolProfile, SettleIdleClosesTheTrailingIdleTail) {
  util::ThreadPool pool(2);
  pool.run_tasks(8, [](std::size_t, unsigned) {});
  const util::WorkerProfile before = pool.profile().totals();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  pool.settle_idle();
  const util::WorkerProfile after = pool.profile().totals();
  // Both workers sat through the sleep; settle_idle() folds that tail
  // into idle_ns (the DESIGN.md section 13 trailing-idle caveat).
  EXPECT_GE(after.idle_ns - before.idle_ns, 2ull * 15'000'000)
      << "two workers x at least half of a 30ms sleep each";
  EXPECT_EQ(after.busy_ns, before.busy_ns)
      << "settling idle must never touch busy time";
  EXPECT_EQ(after.tasks, before.tasks);
  // Idempotent: an immediate second settle adds (nearly) nothing.
  pool.settle_idle();
  const util::WorkerProfile again = pool.profile().totals();
  EXPECT_LT(again.idle_ns - after.idle_ns, 10'000'000u);
}

TEST(PoolProfile, PendingTasksIsVisibleMidBatch) {
  util::ThreadPool pool(2);
  const obs::PoolProfileScope scope(pool);
  std::atomic<std::uint64_t> max_depth{0};
  pool.run_tasks(64, [&](std::size_t, unsigned) {
    // The running task itself is still pending, so from inside a task
    // the registered pool's live depth is always at least 1.
    const std::uint64_t depth = obs::current_pool_queue_depth();
    std::uint64_t seen = max_depth.load(std::memory_order_relaxed);
    while (depth > seen && !max_depth.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  });
  EXPECT_GE(max_depth.load(), 1u);
  EXPECT_EQ(pool.pending_tasks(), 0u) << "drained after the batch barrier";
}

// ---------------------------------------------------------------------------
// obs-layer export.

TEST(PoolProfile, ScopeExportsPoolMetricsAtExit) {
  const std::uint64_t tasks_before = obs::counter("pool.tasks").value();
  const std::uint64_t batches_before = obs::counter("pool.batches").value();
  const std::uint64_t latency_before = obs::histogram("pool.task_us").count();
  {
    util::ThreadPool pool(3);
    const obs::PoolProfileScope scope(pool);
    pool.run_tasks(30, [](std::size_t, unsigned) {});
  }
  EXPECT_EQ(obs::counter("pool.tasks").value(), tasks_before + 30);
  EXPECT_EQ(obs::counter("pool.batches").value(), batches_before + 1);
  EXPECT_EQ(obs::histogram("pool.task_us").count(), latency_before + 30);
  EXPECT_EQ(obs::gauge_value("pool.workers"), 3.0);
  const double utilization = obs::gauge_value("pool.utilization");
  EXPECT_GE(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);
}

TEST(PoolProfile, ScopeEmitsOneWorkerStatsEventPerWorker) {
  const std::string path = ::testing::TempDir() + "/pool_profile.jrnl";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::Journal::instance().open(path));
  {
    util::ThreadPool pool(3);
    const obs::PoolProfileScope scope(pool);
    pool.run_tasks(12, [](std::size_t, unsigned) {});
  }
  obs::Journal::instance().close();

  std::vector<obs::JournalEvent> events;
  std::string error;
  ASSERT_TRUE(obs::read_journal_file(path, events, &error)) << error;
  std::size_t worker_stats = 0;
  std::uint64_t tasks = 0;
  for (const obs::JournalEvent& event : events) {
    if (event.kind != obs::EventKind::kWorkerStats) continue;
    ++worker_stats;
    tasks += event.b;
    EXPECT_LT(event.a, 3u) << "worker index in range";
  }
  EXPECT_EQ(worker_stats, 3u);
  EXPECT_EQ(tasks, 12u) << "per-worker task counts sum to the batch";

  const obs::JournalReport report = obs::build_report(events);
  EXPECT_EQ(report.worker_stats, 3u);
  for (const auto& [worker, lane] : report.lanes) EXPECT_TRUE(lane.has_stats);
  std::remove(path.c_str());
}

TEST(PoolProfile, InnerScopeOfNestedPoolsStillExports) {
  const std::uint64_t tasks_before = obs::counter("pool.tasks").value();
  util::ThreadPool outer(2);
  const obs::PoolProfileScope outer_scope(outer);
  {
    util::ThreadPool inner(2);
    const obs::PoolProfileScope inner_scope(inner);
    inner.run_tasks(5, [](std::size_t, unsigned) {});
    // The outer pool stays the registered one for live-depth queries.
    EXPECT_EQ(obs::current_pool_queue_depth(), 0u);
  }
  EXPECT_EQ(obs::counter("pool.tasks").value(), tasks_before + 5);
}

#else  // SIMGEN_NO_TELEMETRY

TEST(PoolProfileStubs, CompileToInertNoOps) {
  util::ThreadPool pool(2);
  const obs::PoolProfileScope scope(pool);
  pool.run_tasks(4, [](std::size_t, unsigned) {});
  EXPECT_EQ(obs::current_pool_queue_depth(), 0u);
  obs::export_pool_profile(pool);  // No-op; pool.* stays absent.
}

#endif  // SIMGEN_NO_TELEMETRY

}  // namespace
}  // namespace simgen

#!/usr/bin/env python3
"""Unit tests for tools/perf_trend.py (run via ctest as tools.perf_trend).

Usage: test_perf_trend.py /path/to/perf_trend.py

Each case drives the script as a subprocess against a temp directory, the
same way CI does, so the exit-code contract (0 pass / 1 usage / 2
regression) is what is actually asserted.
"""
import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = None  # Set from argv in __main__.


def write_cell(directory, name, wall, util=0.8, **extra):
    data = {"benchmark": name.split("__")[0], "strategy": "simgen",
            "wall_seconds": wall, "pool_utilization": util,
            "sat_calls": 120, "num_threads": 4}
    data.update(extra)
    path = pathlib.Path(directory) / f"BENCH_{name}.json"
    path.write_text(json.dumps(data))
    return path


def run_trend(candidate, trend, *args):
    result = subprocess.run(
        [sys.executable, SCRIPT, str(candidate), "--trend-dir", str(trend),
         *args],
        capture_output=True, text=True)
    return result.returncode, result.stdout + result.stderr


class PerfTrendTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = pathlib.Path(self._tmp.name)
        self.run_dir = root / "run"
        self.trend_dir = root / "trend"
        self.run_dir.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def history_len(self):
        path = self.trend_dir / "trend.jsonl"
        if not path.exists():
            return 0
        return len([l for l in path.read_text().splitlines() if l.strip()])

    def test_first_run_seeds_the_baseline_and_passes(self):
        write_cell(self.run_dir, "alu4__simgen", wall=1.0)
        code, output = run_trend(self.run_dir, self.trend_dir)
        self.assertEqual(code, 0, output)
        self.assertIn("seeding", output)
        self.assertEqual(self.history_len(), 1)

    def test_identical_rerun_passes_within_the_band(self):
        write_cell(self.run_dir, "alu4__simgen", wall=1.0)
        run_trend(self.run_dir, self.trend_dir)
        code, output = run_trend(self.run_dir, self.trend_dir)
        self.assertEqual(code, 0, output)
        self.assertIn("ok", output)
        self.assertEqual(self.history_len(), 2)

    def test_injected_wall_regression_fails_and_is_not_recorded(self):
        # +20% on a 10 s cell clears the 15% band plus the 0.05 s
        # absolute slack — the acceptance scenario for the CI leg.
        write_cell(self.run_dir, "alu4__simgen", wall=10.0)
        run_trend(self.run_dir, self.trend_dir)
        write_cell(self.run_dir, "alu4__simgen", wall=12.0)
        code, output = run_trend(self.run_dir, self.trend_dir)
        self.assertEqual(code, 2, output)
        self.assertIn("REGRESSION", output)
        self.assertEqual(self.history_len(), 1,
                         "a regressed run must not poison the baseline")

    def test_utilization_drop_fails(self):
        write_cell(self.run_dir, "alu4__simgen", wall=1.0, util=0.8)
        run_trend(self.run_dir, self.trend_dir)
        write_cell(self.run_dir, "alu4__simgen", wall=1.0, util=0.5)
        code, output = run_trend(self.run_dir, self.trend_dir)
        self.assertEqual(code, 2, output)
        self.assertIn("utilization", output)

    def test_getting_faster_is_never_a_failure(self):
        write_cell(self.run_dir, "alu4__simgen", wall=1.0)
        run_trend(self.run_dir, self.trend_dir)
        write_cell(self.run_dir, "alu4__simgen", wall=0.5)
        code, output = run_trend(self.run_dir, self.trend_dir)
        self.assertEqual(code, 0, output)

    def test_missing_candidate_dir_is_a_usage_error(self):
        code, output = run_trend(self.run_dir / "nope", self.trend_dir)
        self.assertEqual(code, 1, output)
        self.assertIn("does not exist", output)

    def test_empty_candidate_dir_is_a_usage_error(self):
        code, output = run_trend(self.run_dir, self.trend_dir)
        self.assertEqual(code, 1, output)
        self.assertIn("no BENCH_", output)

    def test_no_append_leaves_the_history_untouched(self):
        write_cell(self.run_dir, "alu4__simgen", wall=1.0)
        run_trend(self.run_dir, self.trend_dir)
        code, output = run_trend(self.run_dir, self.trend_dir, "--no-append")
        self.assertEqual(code, 0, output)
        self.assertEqual(self.history_len(), 1)

    def test_gate_field_regression_fails(self):
        # The generic --gate flag is how CI watches sat_wall_seconds; a
        # +125% jump clears the default 15% band plus 0.05 absolute slack.
        write_cell(self.run_dir, "alu4__simgen", wall=1.0,
                   sat_wall_seconds=0.4)
        run_trend(self.run_dir, self.trend_dir, "--gate", "sat_wall_seconds")
        write_cell(self.run_dir, "alu4__simgen", wall=1.0,
                   sat_wall_seconds=0.9)
        code, output = run_trend(self.run_dir, self.trend_dir,
                                 "--gate", "sat_wall_seconds")
        self.assertEqual(code, 2, output)
        self.assertIn("REGRESSION", output)
        self.assertIn("sat_wall_seconds", output)
        self.assertEqual(self.history_len(), 1,
                         "a regressed run must not poison the baseline")

    def test_gate_with_custom_band_and_atol(self):
        write_cell(self.run_dir, "alu4__simgen", wall=1.0,
                   sat_wall_seconds=1.0)
        run_trend(self.run_dir, self.trend_dir,
                  "--gate", "sat_wall_seconds:0.5:0.0")
        # +40% sits inside the widened 50% band.
        write_cell(self.run_dir, "alu4__simgen", wall=1.0,
                   sat_wall_seconds=1.4)
        code, output = run_trend(self.run_dir, self.trend_dir,
                                 "--gate", "sat_wall_seconds:0.5:0.0")
        self.assertEqual(code, 0, output)

    def test_gate_skips_field_absent_from_this_run(self):
        # Replaying an old run (no sat_wall_seconds in the json) under a
        # gated invocation must skip the gate with a notice, not error.
        write_cell(self.run_dir, "alu4__simgen", wall=1.0)
        run_trend(self.run_dir, self.trend_dir)
        code, output = run_trend(self.run_dir, self.trend_dir,
                                 "--gate", "sat_wall_seconds")
        self.assertEqual(code, 0, output)
        self.assertIn("gate skipped", output)

    def test_gate_skips_when_history_predates_the_field(self):
        # History rows without the field give no baseline; the gate skips
        # until enough runs have recorded it.
        write_cell(self.run_dir, "alu4__simgen", wall=1.0)
        run_trend(self.run_dir, self.trend_dir)
        write_cell(self.run_dir, "alu4__simgen", wall=1.0,
                   sat_wall_seconds=0.4)
        code, output = run_trend(self.run_dir, self.trend_dir,
                                 "--gate", "sat_wall_seconds")
        self.assertEqual(code, 0, output)
        self.assertIn("gate skipped", output)
        # The run itself recorded the field, so the next one gates.
        code, output = run_trend(self.run_dir, self.trend_dir,
                                 "--gate", "sat_wall_seconds")
        self.assertEqual(code, 0, output)
        self.assertIn("ok", output)
        self.assertIn("sat_wall_seconds", output)

    def test_bad_gate_spec_is_a_usage_error(self):
        write_cell(self.run_dir, "alu4__simgen", wall=1.0)
        code, output = run_trend(self.run_dir, self.trend_dir,
                                 "--gate", "a:b:c:d")
        self.assertNotEqual(code, 0)
        self.assertIn("bad --gate spec", output)
        code, output = run_trend(self.run_dir, self.trend_dir,
                                 "--gate", "sat_wall_seconds:not_a_number")
        self.assertNotEqual(code, 0)
        self.assertIn("bad --gate spec", output)

    def test_rolling_median_absorbs_one_noisy_run(self):
        write_cell(self.run_dir, "alu4__simgen", wall=1.0)
        for _ in range(3):
            run_trend(self.run_dir, self.trend_dir)
        # One fast outlier recorded...
        write_cell(self.run_dir, "alu4__simgen", wall=0.2)
        run_trend(self.run_dir, self.trend_dir)
        # ...must not make a normal run look like a regression.
        write_cell(self.run_dir, "alu4__simgen", wall=1.02)
        code, output = run_trend(self.run_dir, self.trend_dir)
        self.assertEqual(code, 0, output)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        raise SystemExit("usage: test_perf_trend.py /path/to/perf_trend.py")
    SCRIPT = sys.argv.pop(1)
    unittest.main(verbosity=2)

// Simulator tests: gate semantics, the cover-based LUT evaluation against
// direct truth-table evaluation, PO transparency, constants.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>

#include "benchgen/generator.hpp"
#include "util/rng.hpp"

namespace simgen::sim {
namespace {

TEST(Simulator, BasicGates) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g_and = network.add_lut(f, tt::TruthTable::and_gate(2));
  const net::NodeId g_xor = network.add_lut(f, tt::TruthTable::xor_gate(2));
  const net::NodeId g_nor = network.add_lut(f, tt::TruthTable::nor_gate(2));
  const net::NodeId po = network.add_po(g_xor);

  Simulator sim(network);
  const PatternWord wa = 0xaaaaaaaaaaaaaaaaull;
  const PatternWord wb = 0xccccccccccccccccull;
  sim.simulate_word(std::vector<PatternWord>{wa, wb});
  EXPECT_EQ(sim.value(g_and), wa & wb);
  EXPECT_EQ(sim.value(g_xor), wa ^ wb);
  EXPECT_EQ(sim.value(g_nor), ~(wa | wb));
  EXPECT_EQ(sim.value(po), wa ^ wb);  // PO mirrors its driver
}

TEST(Simulator, Constants) {
  net::Network network;
  network.add_pi();
  const net::NodeId c0 = network.add_constant(false);
  const net::NodeId c1 = network.add_constant(true);
  Simulator sim(network);
  sim.simulate_word(std::vector<PatternWord>{0x1234u});
  EXPECT_EQ(sim.value(c0), PatternWord{0});
  EXPECT_EQ(sim.value(c1), ~PatternWord{0});
}

TEST(Simulator, WrongPiCountThrows) {
  net::Network network;
  network.add_pi();
  network.add_pi();
  Simulator sim(network);
  EXPECT_THROW(sim.simulate_word(std::vector<PatternWord>{0}),
               std::invalid_argument);
}

TEST(Simulator, ValueBitExtraction) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  Simulator sim(network);
  sim.simulate_word(std::vector<PatternWord>{0b1010});
  EXPECT_FALSE(sim.value_bit(a, 0));
  EXPECT_TRUE(sim.value_bit(a, 1));
  EXPECT_FALSE(sim.value_bit(a, 2));
  EXPECT_TRUE(sim.value_bit(a, 3));
}

// Property: the ISOP-cover evaluation must agree with direct truth-table
// lookup for random LUT functions of every arity.
class SimulatorLutArity : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimulatorLutArity, CoverEvalMatchesTruthTable) {
  const unsigned arity = GetParam();
  util::Rng rng(800 + arity);
  for (int round = 0; round < 10; ++round) {
    net::Network network;
    std::vector<net::NodeId> pis;
    for (unsigned i = 0; i < arity; ++i) pis.push_back(network.add_pi());
    tt::TruthTable function(arity);
    for (std::uint64_t m = 0; m < function.num_bits(); ++m)
      function.set_bit(m, rng.flip());
    const net::NodeId g = network.add_lut(pis, function);
    network.add_po(g);

    Simulator sim(network);
    std::vector<PatternWord> words(arity);
    for (auto& w : words) w = rng();
    sim.simulate_word(words);
    for (unsigned pattern = 0; pattern < 64; ++pattern) {
      std::uint32_t minterm = 0;
      for (unsigned v = 0; v < arity; ++v)
        if ((words[v] >> pattern) & 1u) minterm |= 1u << v;
      ASSERT_EQ(sim.value_bit(g, pattern), function.get_bit(minterm))
          << "arity=" << arity << " pattern=" << pattern;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, SimulatorLutArity,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Simulator, AgreesWithAigOnMappedCircuit) {
  // The mapped LUT network must behave exactly like the source AIG.
  benchgen::CircuitSpec spec;
  spec.name = "sim_cross_check";
  spec.num_gates = 500;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network network = mapping::map_to_luts(graph);
  Simulator sim(network);
  util::Rng rng(31);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint64_t> words(graph.num_pis());
    for (auto& w : words) w = rng();
    const auto aig_out = graph.simulate_words(words);
    sim.simulate_word(words);
    for (std::size_t i = 0; i < network.num_pos(); ++i)
      ASSERT_EQ(sim.value(network.pos()[i]), aig_out[i]) << "PO " << i;
  }
}

TEST(Simulator, RandomWordIsDeterministicPerSeed) {
  net::Network network;
  network.add_pi();
  network.add_pi();
  Simulator sim_a(network), sim_b(network);
  sim_a.simulate_random_word(5, 0);
  sim_b.simulate_random_word(5, 0);
  network.for_each_node([&](net::NodeId id) {
    EXPECT_EQ(sim_a.value(id), sim_b.value(id));
  });
}

// Regression for the shared-Rng pattern bug: the pre-block simulator drew
// per-PI words in PI-iteration order from one stateful stream, so PI k's
// word depended on how many PIs preceded it (add a PI, every stream
// shifts). The stream is now a pure function of (seed, pi, word); these
// literals are the wire format — a change here invalidates every recorded
// journal and BENCH baseline, so the values are pinned exactly.
TEST(Simulator, RandomPatternWordsArePinned) {
  EXPECT_EQ(Simulator::random_pattern_word(1, 0, 0), 0x175908fd57ef17d4ull);
  EXPECT_EQ(Simulator::random_pattern_word(1, 0, 1), 0xa08062515ec0383full);
  EXPECT_EQ(Simulator::random_pattern_word(1, 1, 0), 0xe6e29ade503943b5ull);
  EXPECT_EQ(Simulator::random_pattern_word(2, 0, 0), 0xa9e63eb20004b826ull);
  EXPECT_EQ(Simulator::random_pattern_word(1, 0, 7), 0x3d04a7294ada0a35ull);
  EXPECT_EQ(Simulator::random_pattern_word(42, 3, 5), 0xa74ed2867793e04eull);
}

// The fix itself: PI k's pattern stream must not depend on the other PIs.
// Under the old shared-Rng scheme adding a PI ahead of k shifted k's
// stream by one draw.
TEST(Simulator, PiStreamsAreIndependentOfPiCount) {
  net::Network small;
  const net::NodeId a_small = small.add_pi();
  net::Network big;
  big.add_pi();  // extra PI ahead of the one under test
  const net::NodeId a_big = big.add_pi();
  Simulator sim_small(small), sim_big(big);
  sim_small.simulate_random_word(9, 4);
  sim_big.simulate_random_word(9, 4);
  // Both networks see PI index 0 / 1 respectively; index 1's stream in
  // `big` must match nothing in `small`, while the *indexed* streams are
  // stable: pi 0 draws the same word in both networks.
  EXPECT_EQ(sim_small.value(a_small), Simulator::random_pattern_word(9, 0, 4));
  EXPECT_EQ(sim_big.value(a_big), Simulator::random_pattern_word(9, 1, 4));
}

TEST(Simulator, RandomBlockMatchesWordByWordRounds) {
  benchgen::CircuitSpec spec;
  spec.name = "sim_block_check";
  spec.num_gates = 200;
  const net::Network network =
      mapping::map_to_luts(benchgen::generate_circuit(spec));
  Simulator wide(network, /*block_words=*/8);
  Simulator narrow(network, /*block_words=*/1);
  wide.simulate_random_block(7, /*first_word_index=*/0, /*valid_words=*/8);
  for (std::uint64_t w = 0; w < 8; ++w) {
    narrow.simulate_random_word(7, w);
    network.for_each_node([&](net::NodeId id) {
      ASSERT_EQ(wide.value_word(id, w), narrow.value(id))
          << "node " << id << " word " << w;
    });
  }
}

TEST(Simulator, ObservedWordSelectsCompatView) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  Simulator sim(network, /*block_words=*/4);
  const std::vector<PatternWord> block{10, 20, 30, 40};
  sim.simulate_block(block, /*valid_words=*/4);
  EXPECT_EQ(sim.value(a), PatternWord{10});  // resets to word 0
  sim.set_observed_word(2);
  EXPECT_EQ(sim.value(a), PatternWord{30});
  EXPECT_EQ(sim.values()[a], PatternWord{30});
  EXPECT_THROW(sim.set_observed_word(4), std::out_of_range);
}

TEST(Simulator, PartialBlockOnlyValidatesRequestedWords) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  Simulator sim(network, /*block_words=*/4);
  const std::vector<PatternWord> block{1, 2, 0, 0};
  sim.simulate_block(block, /*valid_words=*/2);
  EXPECT_EQ(sim.valid_words(), 2u);
  EXPECT_EQ(sim.value_word(a, 1), PatternWord{2});
  EXPECT_THROW(sim.set_observed_word(2), std::out_of_range);
}

}  // namespace
}  // namespace simgen::sim

// Guided-simulation driver tests: every strategy arm runs, costs are
// monotone non-increasing, and guided simulation splits classes that
// random simulation left behind.
#include "simgen/guided_sim.hpp"

#include <gtest/gtest.h>

#include "benchgen/suite.hpp"
#include "sim/random_sim.hpp"

namespace simgen::core {
namespace {

net::Network test_network() {
  benchgen::CircuitSpec spec;
  spec.name = "guided_sim_test";
  spec.num_pis = 16;
  spec.num_pos = 8;
  spec.num_gates = 300;
  spec.redundancy = 0.08;
  return benchgen::generate_mapped(spec);
}

TEST(GuidedSim, StrategyNames) {
  EXPECT_EQ(strategy_name(Strategy::kRevS), "RevS");
  EXPECT_EQ(strategy_name(Strategy::kSiRd), "SI+RD");
  EXPECT_EQ(strategy_name(Strategy::kAiRd), "AI+RD");
  EXPECT_EQ(strategy_name(Strategy::kAiDc), "AI+DC");
  EXPECT_EQ(strategy_name(Strategy::kAiDcMffc), "AI+DC+MFFC");
}

TEST(GuidedSim, GeneratorOptionsMapping) {
  EXPECT_EQ(generator_options_for(Strategy::kSiRd).implication,
            ImplicationStrategy::kSimple);
  EXPECT_EQ(generator_options_for(Strategy::kAiRd).implication,
            ImplicationStrategy::kAdvanced);
  EXPECT_EQ(generator_options_for(Strategy::kAiDc).decision,
            DecisionStrategy::kDontCare);
  EXPECT_EQ(generator_options_for(Strategy::kAiDcMffc).decision,
            DecisionStrategy::kDontCareMffc);
  EXPECT_THROW((void)generator_options_for(Strategy::kRevS),
               std::invalid_argument);
}

class GuidedSimStrategy : public ::testing::TestWithParam<Strategy> {};

TEST_P(GuidedSimStrategy, CostIsMonotoneNonIncreasing) {
  const net::Network network = test_network();
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);

  // One round of random simulation, as in the paper's Section 6.2 setup.
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 1;
  run_random_simulation(simulator, classes, random_options);
  const std::uint64_t cost_after_random = classes.cost();

  GuidedSimOptions options;
  options.strategy = GetParam();
  options.iterations = 10;
  const GuidedSimResult result =
      run_guided_simulation(simulator, classes, options);

  ASSERT_EQ(result.cost_per_iteration.size(), 10u);
  std::uint64_t last = cost_after_random;
  for (const std::uint64_t cost : result.cost_per_iteration) {
    EXPECT_LE(cost, last);
    last = cost;
  }
  EXPECT_EQ(classes.cost(), result.cost_per_iteration.back());
  // RevS may legitimately fail every attempt when the surviving classes
  // are dominated by true equivalences (complementary golds are then
  // unsatisfiable); SimGen arms still produce usable vectors via partial
  // target satisfaction.
  if (GetParam() == Strategy::kRevS) {
    EXPECT_GT(result.vectors_generated + result.vectors_skipped, 0u);
  } else {
    EXPECT_GT(result.vectors_generated, 0u);
  }
  EXPECT_GE(result.runtime_seconds, 0.0);
}

TEST_P(GuidedSimStrategy, SplitsBeyondStagnantRandom) {
  // Run random simulation to stagnation, then guided simulation: the
  // guided phase should split at least one additional class on this
  // redundancy-rich circuit (the Figure 7 dynamic).
  const net::Network network = test_network();
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);

  sim::RandomSimOptions random_options;
  random_options.max_rounds = 24;
  random_options.stagnation_rounds = 3;
  run_random_simulation(simulator, classes, random_options);
  const std::uint64_t stuck_cost = classes.cost();
  ASSERT_GT(stuck_cost, 0u) << "circuit must leave work for guided simulation";

  GuidedSimOptions options;
  options.strategy = GetParam();
  options.iterations = 20;
  run_guided_simulation(simulator, classes, options);
  EXPECT_LE(classes.cost(), stuck_cost);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, GuidedSimStrategy,
                         ::testing::Values(Strategy::kRevS, Strategy::kSiRd,
                                           Strategy::kAiRd, Strategy::kAiDc,
                                           Strategy::kAiDcMffc));

TEST(GuidedSim, FullyRefinedClassesShortCircuit) {
  const net::Network network = test_network();
  sim::Simulator simulator(network);
  sim::EquivClasses classes({});  // nothing to do
  GuidedSimOptions options;
  options.iterations = 3;
  const GuidedSimResult result =
      run_guided_simulation(simulator, classes, options);
  ASSERT_EQ(result.cost_per_iteration.size(), 3u);
  for (const std::uint64_t cost : result.cost_per_iteration) EXPECT_EQ(cost, 0u);
  EXPECT_EQ(result.vectors_generated, 0u);
}

TEST(GuidedSim, DeterministicAcrossRuns) {
  const net::Network network = test_network();
  std::vector<std::uint64_t> costs[2];
  for (int run = 0; run < 2; ++run) {
    sim::Simulator simulator(network);
    sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
    sim::RandomSimOptions random_options;
    random_options.max_rounds = 1;
    run_random_simulation(simulator, classes, random_options);
    GuidedSimOptions options;
    options.strategy = Strategy::kAiDcMffc;
    options.iterations = 6;
    options.seed = 77;
    costs[run] = run_guided_simulation(simulator, classes, options)
                     .cost_per_iteration;
  }
  EXPECT_EQ(costs[0], costs[1]);
}

}  // namespace
}  // namespace simgen::core

namespace simgen::core {
namespace {

TEST(GuidedSim, TargetCapPreservesGoldBalance) {
  const net::Network network = test_network();
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 1;
  run_random_simulation(simulator, classes, random_options);

  GuidedSimOptions options;
  options.strategy = Strategy::kAiDcMffc;
  options.iterations = 5;
  options.max_targets_per_class = 4;
  const GuidedSimResult result =
      run_guided_simulation(simulator, classes, options);
  // Capped runs still function end to end and record all iterations.
  EXPECT_EQ(result.cost_per_iteration.size(), 5u);
}

TEST(GuidedSim, BackoffDoesNotChangeReachableCost) {
  // With and without backoff, the guided phase must converge to similar
  // cost; backoff only skips classes whose attempts produce nothing.
  const net::Network network = test_network();
  std::uint64_t costs[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    sim::Simulator simulator(network);
    sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
    sim::RandomSimOptions random_options;
    random_options.max_rounds = 4;
    run_random_simulation(simulator, classes, random_options);
    GuidedSimOptions options;
    options.strategy = Strategy::kAiDcMffc;
    options.iterations = 12;
    options.max_backoff = run == 0 ? 0 : 8;
    run_guided_simulation(simulator, classes, options);
    costs[run] = classes.cost();
  }
  // Backoff may only miss late splits; costs must stay within 15%.
  const double hi = static_cast<double>(std::max(costs[0], costs[1]));
  const double lo = static_cast<double>(std::min(costs[0], costs[1]));
  EXPECT_LE(hi, lo * 1.15 + 3.0);
}

}  // namespace
}  // namespace simgen::core

// Benchmark generator and suite tests: determinism, spec adherence, and —
// critically — that injected redundancy yields genuine, SAT-provable
// equivalences that structural hashing did not collapse.
#include "benchgen/suite.hpp"

#include <gtest/gtest.h>

#include "sim/random_sim.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::benchgen {
namespace {

TEST(BenchGen, DeterministicByName) {
  CircuitSpec spec;
  spec.name = "determinism";
  spec.num_gates = 300;
  const aig::Aig a = generate_circuit(spec);
  const aig::Aig b = generate_circuit(spec);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  util::Rng rng(1);
  std::vector<std::uint64_t> words(a.num_pis());
  for (auto& w : words) w = rng();
  EXPECT_EQ(a.simulate_words(words), b.simulate_words(words));
}

TEST(BenchGen, DifferentNamesDiffer) {
  CircuitSpec spec_a;
  spec_a.name = "alpha";
  spec_a.num_gates = 200;
  CircuitSpec spec_b = spec_a;
  spec_b.name = "beta";
  const aig::Aig a = generate_circuit(spec_a);
  const aig::Aig b = generate_circuit(spec_b);
  EXPECT_NE(a.num_nodes(), b.num_nodes());
}

TEST(BenchGen, SpecInterfaceRespected) {
  CircuitSpec spec;
  spec.name = "interface";
  spec.num_pis = 23;
  spec.num_pos = 11;
  spec.num_gates = 250;
  const aig::Aig graph = generate_circuit(spec);
  EXPECT_EQ(graph.num_pis(), 23u);
  // POs: requested count, plus possibly one compaction PO for surplus
  // dangling signals.
  EXPECT_GE(graph.num_pos(), 11u);
  EXPECT_LE(graph.num_pos(), 12u);
  EXPECT_GE(graph.num_ands(), 250u);
  graph.check_invariants();
}

TEST(BenchGen, StylesProduceDifferentShapes) {
  CircuitSpec control, arith;
  control.name = "style_test";
  control.num_gates = 600;
  control.style = CircuitStyle::kControl;
  arith = control;
  arith.style = CircuitStyle::kArithmetic;
  const aig::Aig g_control = generate_circuit(control);
  const aig::Aig g_arith = generate_circuit(arith);
  // XOR-heavy arithmetic circuits inflate AND counts per drawn gate, so
  // the structural profiles must differ measurably.
  EXPECT_NE(g_control.depth(), g_arith.depth());
}

TEST(BenchGen, RedundancyCreatesSimulationEquivalences) {
  // With redundancy, some distinct LUT outputs agree on many random
  // patterns (classes survive); with redundancy 0 far fewer should.
  CircuitSpec redundant;
  redundant.name = "red_on";
  redundant.num_gates = 400;
  redundant.redundancy = 0.10;
  CircuitSpec plain = redundant;
  plain.name = "red_off";  // different stream, but the knob is what matters
  plain.redundancy = 0.0;

  const auto measure = [](const CircuitSpec& spec) {
    const net::Network network = generate_mapped(spec);
    sim::Simulator simulator(network);
    sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
    sim::RandomSimOptions options;
    options.max_rounds = 16;
    run_random_simulation(simulator, classes, options);
    return classes.cost();
  };
  EXPECT_GT(measure(redundant), measure(plain));
}

TEST(BenchGen, Suite42Benchmarks) {
  const auto suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 42u);
  // Spot-check the paper's names are all present.
  for (const char* name :
       {"alu4", "apex2", "cps", "sin", "square", "arbiter", "dec", "m_ctrl",
        "priority", "voter", "log2", "b14_C", "b17_C2", "b22_C2"}) {
    EXPECT_NE(find_benchmark(name), nullptr) << name;
  }
  EXPECT_EQ(find_benchmark("nonexistent"), nullptr);
  // Names are unique.
  for (std::size_t i = 0; i < suite.size(); ++i)
    for (std::size_t j = i + 1; j < suite.size(); ++j)
      EXPECT_NE(suite[i].name, suite[j].name);
}

TEST(BenchGen, StackedSuiteMatchesPaperTable2) {
  const auto stacked = stacked_suite();
  ASSERT_EQ(stacked.size(), 9u);
  bool found_alu4 = false;
  for (const StackedSpec& spec : stacked) {
    EXPECT_NE(find_benchmark(spec.base), nullptr);
    if (spec.base == "alu4") {
      found_alu4 = true;
      EXPECT_EQ(spec.copies, 15u);
    }
  }
  EXPECT_TRUE(found_alu4);
}

TEST(BenchGen, GenerateStackedGrowsCircuit) {
  const StackedSpec spec{"alu4", 3};
  const aig::Aig base = generate_circuit(*find_benchmark("alu4"));
  const aig::Aig stacked = generate_stacked(spec);
  // Strash across copies dedups shared structure (exactly as ABC's
  // &putontop does), so growth is super-linear in logic but below 3x.
  EXPECT_GT(stacked.num_ands(), 3 * base.num_ands() / 2);
  EXPECT_GT(stacked.depth(), base.depth());
  stacked.check_invariants();
  EXPECT_THROW(generate_stacked(StackedSpec{"unknown", 2}),
               std::invalid_argument);
}

TEST(BenchGen, SmallSuiteMembersAreWellFormed) {
  // Generate + map a sample of the suite and validate structure.
  for (const char* name : {"alu4", "e64", "dec", "misex3c"}) {
    const CircuitSpec* spec = find_benchmark(name);
    ASSERT_NE(spec, nullptr);
    const net::Network network = generate_mapped(*spec);
    network.check_invariants();
    EXPECT_GT(network.num_luts(), 0u) << name;
    EXPECT_EQ(network.num_pis(), spec->num_pis) << name;
  }
}

}  // namespace
}  // namespace simgen::benchgen

// Verilog writer and reader tests: exact SOP emission on small circuits,
// structural properties on large ones, and full write->read round trips
// (functional equivalence checked by simulation).
#include "io/verilog.hpp"

#include <gtest/gtest.h>

#include <array>

#include "benchgen/arith.hpp"
#include "benchgen/generator.hpp"
#include "mapping/lut_mapper.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::io {
namespace {

TEST(Verilog, EmitsModuleSkeleton) {
  net::Network network("my_top");
  const net::NodeId a = network.add_pi("a");
  const net::NodeId b = network.add_pi("b");
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::and_gate(2), "g");
  network.add_po(g, "out");

  const std::string text = write_verilog_string(network);
  EXPECT_NE(text.find("module my_top (a, b, out);"), std::string::npos);
  EXPECT_NE(text.find("input a;"), std::string::npos);
  EXPECT_NE(text.find("output out;"), std::string::npos);
  EXPECT_NE(text.find("assign g = (a & b);"), std::string::npos);
  EXPECT_NE(text.find("assign out = g;"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(Verilog, SopWithComplementsAndOr) {
  // f = (a & !b) | c.
  net::Network network;
  const net::NodeId a = network.add_pi("a");
  const net::NodeId b = network.add_pi("b");
  const net::NodeId c = network.add_pi("c");
  const std::array<net::NodeId, 3> f{a, b, c};
  const auto table = (tt::TruthTable::projection(3, 0) &
                      ~tt::TruthTable::projection(3, 1)) |
                     tt::TruthTable::projection(3, 2);
  network.add_po(network.add_lut(f, table, "g"), "out");

  const std::string text = write_verilog_string(network);
  // The ISOP has the two cubes (a & ~b) and (c), in either order.
  EXPECT_NE(text.find("(a & ~b)"), std::string::npos);
  EXPECT_NE(text.find("(c)"), std::string::npos);
  EXPECT_NE(text.find(" | "), std::string::npos);
}

TEST(Verilog, ConstantsAndSanitizedNames) {
  net::Network network("top-level!");
  const net::NodeId a = network.add_pi("data[0]");
  network.add_po(network.add_constant(true), "k1");
  network.add_po(a, "q");

  const std::string text = write_verilog_string(network);
  EXPECT_NE(text.find("module top_level_"), std::string::npos);
  EXPECT_NE(text.find("data_0_"), std::string::npos);  // brackets sanitized
  EXPECT_NE(text.find("= 1'b1;"), std::string::npos);
  EXPECT_EQ(text.find('['), std::string::npos);
}

TEST(Verilog, DuplicateNamesAreDisambiguated) {
  net::Network network;
  const net::NodeId a = network.add_pi("sig");
  const std::array<net::NodeId, 1> f{a};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::not_gate(), "sig");
  network.add_po(g, "out");
  const std::string text = write_verilog_string(network);
  // Both a "sig" and a decorated variant must exist.
  EXPECT_NE(text.find("sig_"), std::string::npos);
}

TEST(Verilog, GeneratedBenchmarkIsWellFormed) {
  benchgen::CircuitSpec spec;
  spec.name = "verilog_smoke";
  spec.num_gates = 300;
  const net::Network network = benchgen::generate_mapped(spec);
  const std::string text = write_verilog_string(network);

  // One assign per LUT + one per PO + constants; module/endmodule close.
  std::size_t assigns = 0;
  for (std::size_t at = text.find("assign"); at != std::string::npos;
       at = text.find("assign", at + 1))
    ++assigns;
  EXPECT_GE(assigns, network.num_luts() + network.num_pos());
  EXPECT_NE(text.find("module "), std::string::npos);
  EXPECT_NE(text.rfind("endmodule"), std::string::npos);
  // Balanced parentheses overall.
  long balance = 0;
  for (const char c : text) {
    if (c == '(') ++balance;
    if (c == ')') --balance;
    ASSERT_GE(balance, 0);
  }
  EXPECT_EQ(balance, 0);
}

}  // namespace
}  // namespace simgen::io

namespace simgen::io {
namespace {

void expect_same_function_v(const net::Network& a, const net::Network& b,
                            int rounds = 6) {
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  sim::Simulator sim_a(a), sim_b(b);
  util::Rng rng(321);
  for (int round = 0; round < rounds; ++round) {
    std::vector<sim::PatternWord> words(a.num_pis());
    for (auto& w : words) w = rng();
    sim_a.simulate_word(words);
    sim_b.simulate_word(words);
    for (std::size_t i = 0; i < a.num_pos(); ++i)
      ASSERT_EQ(sim_a.value(a.pos()[i]), sim_b.value(b.pos()[i]));
  }
}

TEST(VerilogReader, ParsesHandWrittenModule) {
  const net::Network network = read_verilog_string(R"(
    // a small module
    module demo (a, b, c, f);
      input a, b, c;
      output f;
      wire t;
      assign t = (a & ~b) | c;
      assign f = ~t;
    endmodule
  )");
  EXPECT_EQ(network.name(), "demo");
  EXPECT_EQ(network.num_pis(), 3u);
  EXPECT_EQ(network.num_pos(), 1u);
  sim::Simulator sim(network);
  const sim::PatternWord a = 0xaaaaaaaaaaaaaaaaull;
  const sim::PatternWord b = 0xccccccccccccccccull;
  const sim::PatternWord c = 0xf0f0f0f0f0f0f0f0ull;
  sim.simulate_word(std::vector<sim::PatternWord>{a, b, c});
  EXPECT_EQ(sim.value(network.pos()[0]), ~((a & ~b) | c));
}

TEST(VerilogReader, ConstantsAndOutOfOrder) {
  const net::Network network = read_verilog_string(
      "module m (a, f, g);\n input a;\n output f, g;\n"
      " assign f = t | a;\n assign t = 1'b0;\n assign g = 1'b1;\nendmodule\n");
  sim::Simulator sim(network);
  sim.simulate_word(std::vector<sim::PatternWord>{0x1234u});
  EXPECT_EQ(sim.value(network.pos()[0]), 0x1234u);
  EXPECT_EQ(sim.value(network.pos()[1]), ~sim::PatternWord{0});
}

TEST(VerilogReader, BlockCommentsAndPrecedence) {
  // & binds tighter than |.
  const net::Network network = read_verilog_string(
      "module m (a, b, c, f);\n input a, b, c;\n output f;\n"
      " /* multi\n line */ assign f = a | b & c;\nendmodule\n");
  sim::Simulator sim(network);
  const sim::PatternWord a = 0xaaaaaaaaaaaaaaaaull;
  const sim::PatternWord b = 0xccccccccccccccccull;
  const sim::PatternWord c = 0xf0f0f0f0f0f0f0f0ull;
  sim.simulate_word(std::vector<sim::PatternWord>{a, b, c});
  EXPECT_EQ(sim.value(network.pos()[0]), a | (b & c));
}

TEST(VerilogReader, Errors) {
  EXPECT_THROW(read_verilog_string("garbage"), std::runtime_error);
  EXPECT_THROW(read_verilog_string("module m (a);\n input a;\n"),
               std::runtime_error);  // missing endmodule
  EXPECT_THROW(
      read_verilog_string("module m (a, f);\n input a;\n output f;\n"
                          " always @(posedge a) f = 1;\nendmodule\n"),
      std::runtime_error);  // unsupported construct
  EXPECT_THROW(
      read_verilog_string("module m (f);\n output f;\n assign f = 2'b01;\n"
                          "endmodule\n"),
      std::runtime_error);  // unsupported literal
  EXPECT_THROW(
      read_verilog_string("module m (a, f);\n input a;\n output f;\n"
                          " assign f = a;\n assign f = ~a;\nendmodule\n"),
      std::runtime_error);  // double assignment
  EXPECT_THROW(
      read_verilog_string("module m (a, f);\n input a;\n output f;\n"
                          " assign f = g;\n assign g = f;\nendmodule\n"),
      std::runtime_error);  // cycle
}

TEST(VerilogReader, RoundTripGeneratedBenchmark) {
  benchgen::CircuitSpec spec;
  spec.name = "verilog_roundtrip";
  spec.num_gates = 350;
  const net::Network original = benchgen::generate_mapped(spec);
  const net::Network reparsed =
      read_verilog_string(write_verilog_string(original));
  expect_same_function_v(original, reparsed);
}

TEST(VerilogReader, RoundTripArithmetic) {
  const net::Network adder =
      mapping::map_to_luts(benchgen::build_ripple_carry_adder(8));
  const net::Network reparsed = read_verilog_string(write_verilog_string(adder));
  expect_same_function_v(adder, reparsed);
}

}  // namespace
}  // namespace simgen::io

// CDCL solver tests: propagation, conflicts, assumptions, incrementality,
// known-hard UNSAT families, and a brute-force cross-check property.
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace simgen::sat {
namespace {

TEST(Solver, EmptyProblemIsSat) {
  Solver solver;
  EXPECT_EQ(solver.solve(), Result::kSat);
}

TEST(Solver, UnitClauses) {
  Solver solver;
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  EXPECT_TRUE(solver.add_clause({pos(x)}));
  EXPECT_TRUE(solver.add_clause({neg(y)}));
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_TRUE(solver.model_value(x));
  EXPECT_FALSE(solver.model_value(y));
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
  Solver solver;
  const Var x = solver.new_var();
  EXPECT_TRUE(solver.add_clause({pos(x)}));
  EXPECT_FALSE(solver.add_clause({neg(x)}));
  EXPECT_TRUE(solver.in_conflict());
  EXPECT_EQ(solver.solve(), Result::kUnsat);
}

TEST(Solver, ImplicationChain) {
  // x0 and (x_i -> x_{i+1}) for a long chain: all forced true.
  Solver solver;
  std::vector<Var> vars;
  for (int i = 0; i < 200; ++i) vars.push_back(solver.new_var());
  solver.add_clause({pos(vars[0])});
  for (int i = 0; i + 1 < 200; ++i)
    solver.add_clause({neg(vars[i]), pos(vars[i + 1])});
  ASSERT_EQ(solver.solve(), Result::kSat);
  for (const Var v : vars) EXPECT_TRUE(solver.model_value(v));
}

TEST(Solver, TautologyAndDuplicatesHandled) {
  Solver solver;
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  EXPECT_TRUE(solver.add_clause({pos(x), neg(x)}));           // tautology
  EXPECT_TRUE(solver.add_clause({pos(y), pos(y), pos(y)}));   // dup -> unit
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_TRUE(solver.model_value(y));
}

TEST(Solver, ModelSatisfiesAllClauses) {
  // Random 3-SAT at a satisfiable density; verify the model directly.
  util::Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    Solver solver;
    std::vector<Var> vars;
    for (int i = 0; i < 30; ++i) vars.push_back(solver.new_var());
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 80; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k)
        clause.push_back(Lit(vars[rng.below(vars.size())], rng.flip()));
      clauses.push_back(clause);
      solver.add_clause(clause);
    }
    if (solver.solve() != Result::kSat) continue;
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (const Lit lit : clause) satisfied |= solver.model_value(lit);
      ASSERT_TRUE(satisfied);
    }
  }
}

// Brute-force cross-check: on small random instances the solver's verdict
// must match exhaustive enumeration exactly.
TEST(Solver, MatchesBruteForceOnSmallInstances) {
  util::Rng rng(321);
  for (int round = 0; round < 60; ++round) {
    const unsigned num_vars = 4 + static_cast<unsigned>(rng.below(7));  // 4..10
    const unsigned num_clauses = num_vars * (3 + static_cast<unsigned>(rng.below(3)));
    std::vector<std::vector<Lit>> clauses;
    Solver solver;
    std::vector<Var> vars;
    for (unsigned i = 0; i < num_vars; ++i) vars.push_back(solver.new_var());
    for (unsigned c = 0; c < num_clauses; ++c) {
      std::vector<Lit> clause;
      const unsigned width = 1 + static_cast<unsigned>(rng.below(3));
      for (unsigned k = 0; k < width; ++k)
        clause.push_back(Lit(vars[rng.below(num_vars)], rng.flip()));
      clauses.push_back(clause);
      solver.add_clause(clause);
    }

    bool brute_sat = false;
    for (std::uint32_t m = 0; m < (1u << num_vars) && !brute_sat; ++m) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit lit : clause)
          any |= (((m >> lit.var()) & 1u) != 0) != lit.negated();
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    const Result verdict = solver.solve();
    ASSERT_EQ(verdict == Result::kSat, brute_sat) << "round " << round;
  }
}

TEST(Solver, PigeonholeIsUnsat) {
  // PHP(n+1, n): n+1 pigeons, n holes — classically hard UNSAT, exercises
  // conflict analysis and learning deeply.
  const int holes = 6;
  const int pigeons = holes + 1;
  Solver solver;
  std::vector<std::vector<Var>> slot(pigeons, std::vector<Var>(holes));
  for (auto& row : slot)
    for (auto& var : row) var = solver.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(slot[p][h]));
    solver.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        solver.add_clause({neg(slot[p1][h]), neg(slot[p2][h])});
  EXPECT_EQ(solver.solve(), Result::kUnsat);
  EXPECT_GT(solver.stats().conflicts.value(), 10u);
}

TEST(Solver, XorChainParity) {
  // Tseitin-encoded xor chain: x1 ^ x2 ^ ... ^ xn = 1 is SAT; adding the
  // complementary parity constraint makes it UNSAT.
  const int n = 12;
  Solver solver;
  std::vector<Var> x;
  for (int i = 0; i < n; ++i) x.push_back(solver.new_var());
  // p_i = x_0 ^ ... ^ x_i.
  std::vector<Var> p{x[0]};
  for (int i = 1; i < n; ++i) {
    const Var pi = solver.new_var();
    const Var a = p.back();
    const Var b = x[i];
    solver.add_clause({neg(pi), pos(a), pos(b)});
    solver.add_clause({neg(pi), neg(a), neg(b)});
    solver.add_clause({pos(pi), pos(a), neg(b)});
    solver.add_clause({pos(pi), neg(a), pos(b)});
    p.push_back(pi);
  }
  solver.add_clause({pos(p.back())});
  ASSERT_EQ(solver.solve(), Result::kSat);
  // Verify the parity of the model.
  bool parity = false;
  for (int i = 0; i < n; ++i) parity ^= solver.model_value(x[i]);
  EXPECT_TRUE(parity);
  // Force the opposite parity: UNSAT.
  solver.add_clause({neg(p.back())});
  EXPECT_EQ(solver.solve(), Result::kUnsat);
}

TEST(Solver, AssumptionsSelectBranches) {
  Solver solver;
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  solver.add_clause({pos(x), pos(y)});
  ASSERT_EQ(solver.solve({neg(x)}), Result::kSat);
  EXPECT_FALSE(solver.model_value(x));
  EXPECT_TRUE(solver.model_value(y));
  ASSERT_EQ(solver.solve({neg(y)}), Result::kSat);
  EXPECT_TRUE(solver.model_value(x));
  // Contradictory assumptions: UNSAT without poisoning the clause set.
  EXPECT_EQ(solver.solve({neg(x), neg(y)}), Result::kUnsat);
  EXPECT_EQ(solver.solve(), Result::kSat);
  EXPECT_FALSE(solver.in_conflict());
}

TEST(Solver, AssumptionConflictingWithUnit) {
  Solver solver;
  const Var x = solver.new_var();
  solver.add_clause({pos(x)});
  EXPECT_EQ(solver.solve({neg(x)}), Result::kUnsat);
  EXPECT_EQ(solver.solve({pos(x)}), Result::kSat);
}

TEST(Solver, IncrementalAddBetweenSolves) {
  Solver solver;
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  solver.add_clause({pos(x), pos(y)});
  ASSERT_EQ(solver.solve(), Result::kSat);
  solver.add_clause({neg(x)});
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_TRUE(solver.model_value(y));
  solver.add_clause({neg(y)});
  EXPECT_EQ(solver.solve(), Result::kUnsat);
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  // A pigeonhole instance with a tiny conflict budget must bail out.
  const int holes = 8;
  const int pigeons = holes + 1;
  Solver solver;
  std::vector<std::vector<Var>> slot(pigeons, std::vector<Var>(holes));
  for (auto& row : slot)
    for (auto& var : row) var = solver.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(slot[p][h]));
    solver.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        solver.add_clause({neg(slot[p1][h]), neg(slot[p2][h])});
  solver.set_conflict_limit(10);
  EXPECT_EQ(solver.solve(), Result::kUnknown);
  // Removing the limit lets it finish.
  solver.set_conflict_limit(0);
  EXPECT_EQ(solver.solve(), Result::kUnsat);
}

TEST(Solver, StatsAreCounted) {
  Solver solver;
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  solver.add_clause({pos(x), pos(y)});
  solver.add_clause({neg(x), pos(y)});
  solver.add_clause({pos(x), neg(y)});
  solver.solve();
  EXPECT_EQ(solver.stats().solve_calls.value(), 1u);
  EXPECT_GT(solver.stats().propagations.value() + solver.stats().decisions.value(), 0u);
}

}  // namespace
}  // namespace simgen::sat

// Telemetry subsystem tests: counter/gauge/histogram semantics, registry
// aggregation and retirement, snapshot diffing, nested span recording,
// Chrome-trace JSON export (validated with a minimal JSON parser), and an
// end-to-end certified CEC run whose counters must land in the registry.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig_to_network.hpp"
#include "benchgen/generator.hpp"
#include "mapping/lut_mapper.hpp"
#include "sweep/cec.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace simgen::obs {
namespace {

// ---------------------------------------------------------------------------
// Instrument value semantics (independent of the registry, so these run
// under SIMGEN_NO_TELEMETRY too).

TEST(Counter, DetachedCountsLocally) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, CopyIsDetachedValueSnapshot) {
  Counter original("test_obs.copy_semantics");
  original.inc(7);
  Counter copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
  copy.inc();
  EXPECT_EQ(original.value(), 7u);
  EXPECT_EQ(copy.value(), 8u);
  original = copy;
  EXPECT_EQ(original.value(), 8u);
}

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(255), 8u);
  EXPECT_EQ(Histogram::bucket_of(256), 9u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, ObserveTracksCountSumBuckets) {
  Histogram histogram;
  histogram.observe(0);
  histogram.observe(1);
  histogram.observe(5);
  histogram.observe(5);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 11u);
  EXPECT_EQ(histogram.buckets()[0], 1u);  // value 0
  EXPECT_EQ(histogram.buckets()[1], 1u);  // value 1
  EXPECT_EQ(histogram.buckets()[3], 2u);  // values 4..7
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(Histogram, PercentileInterpolatesInsideLog2Buckets) {
  Histogram histogram;
  EXPECT_EQ(histogram.percentile(0.5), 0u);  // empty distribution

  histogram.observe(0);
  EXPECT_EQ(histogram.percentile(0.5), 0u);  // bucket 0 is exact
  EXPECT_EQ(histogram.percentile(1.0), 0u);

  histogram.reset();
  for (int i = 0; i < 3; ++i) histogram.observe(10);  // bucket [8, 15]
  // Ranks 1..3 spread evenly across the bucket's value range: 8, 10, 12.
  EXPECT_EQ(histogram.percentile(0.0), 8u);  // q == 0 degenerates to min
  EXPECT_EQ(histogram.percentile(0.5), 10u);
  EXPECT_EQ(histogram.percentile(1.0), 12u);
}

TEST(Histogram, BucketPercentileIsTheSharedEstimator) {
  // The free function behind Histogram::percentile, the pool-profile
  // exporter, and the --sat report tables; one estimator so p50/p90/p99
  // mean the same thing everywhere.
  std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
  EXPECT_EQ(bucket_percentile(buckets.data(), buckets.size(), 0.5), 0u);
  buckets[Histogram::bucket_of(0)] += 1;
  buckets[Histogram::bucket_of(1)] += 1;
  buckets[Histogram::bucket_of(1000)] += 1;  // lands in [512, 1023]
  EXPECT_EQ(bucket_percentile(buckets.data(), buckets.size(), 0.0), 0u);
  EXPECT_EQ(bucket_percentile(buckets.data(), buckets.size(), 0.5), 1u);
  EXPECT_EQ(bucket_percentile(buckets.data(), buckets.size(), 1.0), 512u);
  // Out-of-range quantiles clamp rather than misbehave.
  EXPECT_EQ(bucket_percentile(buckets.data(), buckets.size(), -1.0), 0u);
  EXPECT_EQ(bucket_percentile(buckets.data(), buckets.size(), 2.0), 512u);
}

TEST(Stopwatch, LapMeasuresSinceLastLap) {
  util::Stopwatch watch;
  watch.start();
  const double first = watch.lap();
  // A lap can only move forward, and the second lap restarts from the
  // first lap's mark, so total elapsed >= first lap.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double second = watch.lap();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, 0.002 * 0.5);  // allow coarse clocks some slack
  EXPECT_GE(watch.seconds(), second);
}

#ifndef SIMGEN_NO_TELEMETRY

// ---------------------------------------------------------------------------
// Registry aggregation.

TEST(Registry, LiveAndRetiredInstrumentsAggregate) {
  reset_all_metrics();
  {
    Counter first("test_obs.reg_counter");
    first.inc(10);
    EXPECT_EQ(capture_snapshot().counter_value("test_obs.reg_counter"), 10u);
  }
  // Retired at destruction: the value must survive the instrument.
  EXPECT_EQ(capture_snapshot().counter_value("test_obs.reg_counter"), 10u);
  {
    Counter second("test_obs.reg_counter");
    second.inc(5);
    // Retired (10) + live (5).
    EXPECT_EQ(capture_snapshot().counter_value("test_obs.reg_counter"), 15u);
  }
  EXPECT_EQ(capture_snapshot().counter_value("test_obs.reg_counter"), 15u);
}

TEST(Registry, CopiesNeverDoubleCount) {
  reset_all_metrics();
  Counter original("test_obs.no_double");
  original.inc(3);
  const Counter copy = original;
  const Counter moved = std::move(original);
  EXPECT_EQ(copy.value(), 3u);
  EXPECT_EQ(moved.value(), 3u);
  // Only the registered original contributes.
  EXPECT_EQ(capture_snapshot().counter_value("test_obs.no_double"), 3u);
}

TEST(Registry, OwnedCounterIsStableAcrossLookups) {
  reset_all_metrics();
  Counter& a = counter("test_obs.owned");
  Counter& b = counter("test_obs.owned");
  EXPECT_EQ(&a, &b);
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(capture_snapshot().counter_value("test_obs.owned"), 5u);
}

TEST(Registry, GaugesAreLastWriteWins) {
  reset_all_metrics();
  set_gauge("test_obs.gauge", 1.5);
  set_gauge("test_obs.gauge", 2.5);
  add_gauge("test_obs.gauge", 0.5);
  EXPECT_DOUBLE_EQ(gauge_value("test_obs.gauge"), 3.0);
  const TelemetrySnapshot snapshot = capture_snapshot();
  ASSERT_TRUE(snapshot.gauges.contains("test_obs.gauge"));
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("test_obs.gauge"), 3.0);
}

TEST(Registry, HistogramAggregatesAndSnapshotTrimsBuckets) {
  reset_all_metrics();
  Histogram& histogram = obs::histogram("test_obs.hist");
  histogram.observe(1);
  histogram.observe(6);
  const TelemetrySnapshot snapshot = capture_snapshot();
  ASSERT_TRUE(snapshot.histograms.contains("test_obs.hist"));
  const HistogramSnapshot& hist = snapshot.histograms.at("test_obs.hist");
  EXPECT_EQ(hist.count, 2u);
  EXPECT_EQ(hist.sum, 7u);
  // Trailing zero buckets trimmed: highest populated bucket is 3 (4..7).
  ASSERT_EQ(hist.buckets.size(), 4u);
  EXPECT_EQ(hist.buckets[1], 1u);
  EXPECT_EQ(hist.buckets[3], 1u);
}

TEST(Snapshot, DiffSubtractsCountersAndKeepsAfterGauges) {
  reset_all_metrics();
  Counter& c = counter("test_obs.diff");
  c.inc(10);
  set_gauge("test_obs.diff_gauge", 1.0);
  const TelemetrySnapshot before = capture_snapshot();
  c.inc(7);
  set_gauge("test_obs.diff_gauge", 9.0);
  const TelemetrySnapshot delta = diff_snapshots(before, capture_snapshot());
  EXPECT_EQ(delta.counter_value("test_obs.diff"), 7u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("test_obs.diff_gauge"), 9.0);
}

TEST(Snapshot, DiffClampsAtZeroAfterReset) {
  reset_all_metrics();
  Counter& c = counter("test_obs.clamp");
  c.inc(10);
  const TelemetrySnapshot before = capture_snapshot();
  reset_all_metrics();
  c.inc(2);
  const TelemetrySnapshot delta = diff_snapshots(before, capture_snapshot());
  EXPECT_EQ(delta.counter_value("test_obs.clamp"), 0u);
}

// ---------------------------------------------------------------------------
// JSONL export.

TEST(MetricsJsonl, EmitsOneValidObjectPerLine) {
  reset_all_metrics();
  counter("test_obs.jsonl").inc(3);
  set_gauge("test_obs.jsonl_gauge", 0.5);
  histogram("test_obs.jsonl_hist").observe(4);
  std::ostringstream out;
  write_metrics_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"kind\":\"counter\",\"name\":\"test_obs.jsonl\","
                      "\"value\":3}"),
            std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"histogram\""), std::string::npos);
  // Every line is brace-balanced and quote-paired.
  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_GE(count, 3u);
}

TEST(MetricsJsonl, EscapesNames) {
  EXPECT_EQ(detail::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(MetricsJsonl, EscapesControlAndPassesValidUtf8) {
  EXPECT_EQ(detail::json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(detail::json_escape("caf\xc3\xa9"), "caf\xc3\xa9");          // é
  EXPECT_EQ(detail::json_escape("\xe4\xbd\xa0"), "\xe4\xbd\xa0");        // 你
  EXPECT_EQ(detail::json_escape("\xf0\x9f\x98\x80"), "\xf0\x9f\x98\x80");  // 😀
}

TEST(MetricsJsonl, ReplacesMalformedUtf8WithReplacementChar) {
  // Stray continuation byte, truncated sequence, overlong encoding,
  // UTF-16 surrogate, and beyond-U+10FFFF must all degrade to �
  // instead of leaking invalid bytes into the JSON output.
  EXPECT_EQ(detail::json_escape("\x80"), "\\ufffd");
  EXPECT_EQ(detail::json_escape("\xc3"), "\\ufffd");            // cut short
  EXPECT_EQ(detail::json_escape("\xc0\xaf"), "\\ufffd\\ufffd");  // overlong '/'
  EXPECT_EQ(detail::json_escape("\xe0\x80\xaf"),
            "\\ufffd\\ufffd\\ufffd");                           // overlong
  EXPECT_EQ(detail::json_escape("\xed\xa0\x80"),
            "\\ufffd\\ufffd\\ufffd");                           // surrogate
  EXPECT_EQ(detail::json_escape("\xf5\x80\x80\x80"),
            "\\ufffd\\ufffd\\ufffd\\ufffd");                    // > U+10FFFF
  EXPECT_EQ(detail::json_escape("ok\x80ok"), "ok\\ufffdok");
}

TEST(MetricsJsonl, NumbersNeverEmitNanOrInf) {
  EXPECT_EQ(detail::json_number(1.5), "1.5");
  EXPECT_EQ(detail::json_number(0.0), "0");
  EXPECT_EQ(detail::json_number(std::nan("")), "null");
  EXPECT_EQ(detail::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(detail::json_number(-std::numeric_limits<double>::infinity()),
            "null");
}

TEST(Logging, ParseLogLevelAcceptsNamesAndDigits) {
  using util::LogLevel;
  EXPECT_EQ(util::parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("4"), LogLevel::kOff);
  EXPECT_FALSE(util::parse_log_level("loud").has_value());
  EXPECT_FALSE(util::parse_log_level("").has_value());
  EXPECT_FALSE(util::parse_log_level("5").has_value());
}

// ---------------------------------------------------------------------------
// Span tracer and Chrome-trace export.

/// Minimal JSON reader covering the subset the trace exporter emits
/// (objects, arrays, strings, numbers, booleans). Any malformed byte
/// fails the test via ADD_FAILURE + parse abort.
class MiniJson {
 public:
  explicit MiniJson(std::string_view text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  [[nodiscard]] std::size_t objects() const noexcept { return objects_; }
  [[nodiscard]] const std::vector<std::string>& strings() const noexcept {
    return strings_;
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++objects_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    strings_.push_back(std::move(out));
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t objects_ = 0;
  std::vector<std::string> strings_;
};

TEST(Tracer, RecordsNestedSpansInCompletionOrder) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    Span outer("outer");
    {
      Span inner("inner");
      inner.arg("depth_check", 1.0);
    }
    Span sibling("sibling");
  }
  tracer.instant("marker");
  tracer.disable();

  const std::vector<Tracer::Event> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Events are recorded at begin time: outer, inner, sibling, marker.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[3].name, "marker");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 1);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[3].phase, 'i');
  // Nesting: inner starts after outer and ends before it.
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
  EXPECT_LE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us + 1e-3);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "depth_check");
}

TEST(Tracer, SpanCloseEndsEarlyAndIsIdempotent) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    Span span("closable");
    span.close();
    span.close();  // second close must be a no-op
  }
  tracer.disable();
  const std::vector<Tracer::Event> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "closable");
}

TEST(Tracer, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  tracer.disable();
  {
    Span span("ghost");
    tracer.instant("ghost_marker");
  }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, ChromeTraceJsonParsesBack) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    Span outer("phase \"quoted\"");  // exercise escaping
    outer.arg("cost", 12.5);
    Span inner("inner");
  }
  tracer.instant("event");
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();

  MiniJson parser(json);
  ASSERT_TRUE(parser.parse()) << json;
  // Metadata event + 3 recorded events, each an object, plus args
  // objects and the root.
  EXPECT_GE(parser.objects(), 5u);
  const auto& strings = parser.strings();
  EXPECT_NE(std::find(strings.begin(), strings.end(), "traceEvents"),
            strings.end());
  EXPECT_NE(std::find(strings.begin(), strings.end(), "phase \"quoted\""),
            strings.end());
  // Chrome requires "ph" and "ts" keys on every event.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a certified CEC run must populate every layer's metrics.

TEST(EndToEnd, CertifiedCecPopulatesRegistry) {
  reset_all_metrics();
  Tracer& tracer = Tracer::instance();
  tracer.enable();

  benchgen::CircuitSpec spec;
  spec.name = "obs_e2e";
  spec.num_pis = 8;
  spec.num_pos = 4;
  spec.num_gates = 120;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network mapped = mapping::map_to_luts(graph);
  const net::Network direct = aig::to_network(graph);

  sweep::CecOptions options;
  options.certify = true;
  const sweep::CecResult result =
      sweep::check_equivalence(mapped, direct, options);
  tracer.disable();
  EXPECT_TRUE(result.equivalent);

  const TelemetrySnapshot snapshot = capture_snapshot();
  // Every layer must have reported: SAT solver, simulator, eqclass
  // manager, SimGen generator, sweeper, and the DRAT certifier.
  EXPECT_GT(snapshot.counter_value("sat.solve_calls"), 0u);
  EXPECT_GT(snapshot.counter_value("sat.propagations"), 0u);
  EXPECT_GT(snapshot.counter_value("sim.words"), 0u);
  EXPECT_GT(snapshot.counter_value("eq.refine_calls"), 0u);
  EXPECT_GT(snapshot.counter_value("eq.splits"), 0u);
  EXPECT_GT(snapshot.counter_value("simgen.targets_attempted"), 0u);
  EXPECT_GT(snapshot.counter_value("sweep.sat_calls"), 0u);
  EXPECT_GT(snapshot.counter_value("drat.certified_targets"), 0u);
  EXPECT_GT(snapshot.counter_value("drat.checked_lemmas"), 0u);

  // The sweeper's own totals and the registry view must agree. The
  // registry counter also covers the post-sweep output-proof
  // certifications, which the run() delta excludes.
  EXPECT_EQ(snapshot.counter_value("sweep.sat_calls"),
            result.sweep_stats.sat_calls);
  EXPECT_EQ(snapshot.counter_value("sweep.certified_unsat"),
            result.sweep_stats.certified_unsat + result.certified_outputs);

  // The phase spans of the run must be in the trace.
  std::vector<std::string> names;
  for (const Tracer::Event& event : tracer.events()) names.push_back(event.name);
  for (const char* expected :
       {"cec.check_equivalence", "cec.random_sim", "cec.sweep",
        "cec.output_proofs", "sweep.run", "sweep.sat_solve"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(EndToEnd, SolverStatsViewMatchesRegistryDelta) {
  reset_all_metrics();
  sat::Solver solver;
  const sat::Var x = solver.new_var();
  const sat::Var y = solver.new_var();
  solver.add_clause({sat::pos(x), sat::pos(y)});
  solver.add_clause({sat::neg(x), sat::pos(y)});
  solver.add_clause({sat::pos(x), sat::neg(y)});
  EXPECT_EQ(solver.solve(), sat::Result::kSat);
  // One source of truth: the instance view IS the registry contribution.
  const TelemetrySnapshot snapshot = capture_snapshot();
  EXPECT_EQ(snapshot.counter_value("sat.solve_calls"),
            solver.stats().solve_calls.value());
  EXPECT_EQ(snapshot.counter_value("sat.decisions"),
            solver.stats().decisions.value());
  EXPECT_EQ(snapshot.counter_value("sat.propagations"),
            solver.stats().propagations.value());
}

#endif  // SIMGEN_NO_TELEMETRY

}  // namespace
}  // namespace simgen::obs

/// \file test_io_roundtrip.cpp
/// \brief Serializer round trips on random networks: write -> read ->
/// structural lint clean -> CEC-equivalent to the original.
///
/// Each format (BLIF, BENCH, AIGER ascii + binary) must reproduce the
/// original function exactly, not just parse back — random LUT networks
/// reach the shapes hand-written fixtures never do (unnamed canonical
/// constants, LUTs ignoring fanins, duplicate fanin references, name
/// collisions with generated fallback names), which is precisely where
/// fuzzing found the first serializer bugs (see tests/repros/).
#include <gtest/gtest.h>

#include <string>

#include "aig/aig_to_network.hpp"
#include "benchgen/generator.hpp"
#include "check/lint.hpp"
#include "fuzz/gen.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "io/blif.hpp"
#include "network/network.hpp"
#include "sweep/cec.hpp"
#include "util/rng.hpp"

namespace simgen {
namespace {

sweep::CecOptions fast_cec() {
  sweep::CecOptions options;
  options.random_rounds = 4;
  options.use_guided_simulation = false;
  options.sweep_internal_nodes = false;
  return options;
}

void expect_equivalent(const net::Network& original,
                       const net::Network& parsed, const std::string& what) {
  const check::LintReport report = check::lint_network(parsed);
  ASSERT_FALSE(report.has_errors()) << what << ": parsed network fails lint";
  ASSERT_EQ(original.num_pis(), parsed.num_pis()) << what;
  ASSERT_EQ(original.num_pos(), parsed.num_pos()) << what;
  ASSERT_TRUE(sweep::check_equivalence(original, parsed, fast_cec()).equivalent)
      << what << ": parsed network is not equivalent to the original";
}

TEST(IoRoundtrip, BlifOnRandomLutNetworks) {
  util::Rng rng(11);
  for (int i = 0; i < 12; ++i) {
    const fuzz::LutGenOptions options =
        fuzz::random_lut_options(rng, fuzz::GenProfile{});
    const net::Network network = fuzz::random_lut_network(rng, options);
    const net::Network parsed =
        io::read_blif_string(io::write_blif_string(network));
    expect_equivalent(network, parsed, "blif #" + std::to_string(i));
  }
}

TEST(IoRoundtrip, BenchOnRandomLutNetworks) {
  util::Rng rng(12);
  for (int i = 0; i < 12; ++i) {
    const fuzz::LutGenOptions options =
        fuzz::random_lut_options(rng, fuzz::GenProfile{});
    const net::Network network = fuzz::random_lut_network(rng, options);
    const net::Network parsed =
        io::read_bench_string(io::write_bench_string(network));
    expect_equivalent(network, parsed, "bench #" + std::to_string(i));
  }
}

TEST(IoRoundtrip, AigerAsciiAndBinaryOnRandomAigs) {
  util::Rng rng(13);
  for (int i = 0; i < 8; ++i) {
    const benchgen::CircuitSpec spec =
        fuzz::random_spec(rng, fuzz::GenProfile{});
    const aig::Aig graph = benchgen::generate_circuit(spec);
    const net::Network original = aig::to_network(graph);
    for (const bool binary : {false, true}) {
      const aig::Aig parsed_graph =
          io::read_aiger_string(io::write_aiger_string(graph, binary));
      ASSERT_FALSE(check::lint_aig(parsed_graph).has_errors());
      const net::Network parsed = aig::to_network(parsed_graph);
      expect_equivalent(original, parsed,
                        std::string(binary ? "aig" : "aag") + " #" +
                            std::to_string(i));
    }
  }
}

TEST(IoRoundtrip, MappedAigsThroughBlifAndBench) {
  util::Rng rng(14);
  for (int i = 0; i < 6; ++i) {
    const benchgen::CircuitSpec spec =
        fuzz::random_spec(rng, fuzz::GenProfile{});
    const net::Network network = benchgen::generate_mapped(spec);
    expect_equivalent(network, io::read_blif_string(io::write_blif_string(network)),
                      "mapped-blif #" + std::to_string(i));
    expect_equivalent(network,
                      io::read_bench_string(io::write_bench_string(network)),
                      "mapped-bench #" + std::to_string(i));
  }
}

// Regression (fuzz-found): the BENCH writer used to reference canonical
// constant nodes without ever defining them; both writers now emit
// CONST0()/CONST1() definitions, which must survive the round trip.
TEST(IoRoundtrip, ConstantDriversSurviveBothFormats) {
  net::Network network("consts");
  const net::NodeId pi = network.add_pi("a");
  const net::NodeId zero = network.add_constant(false);
  const net::NodeId one = network.add_constant(true);
  const net::NodeId or_fanins[] = {pi, zero};
  const net::NodeId lut = network.add_lut(or_fanins, tt::TruthTable::or_gate(2));
  network.add_po(lut, "f");
  network.add_po(one, "g");
  network.add_po(zero, "h");
  expect_equivalent(network, io::read_blif_string(io::write_blif_string(network)),
                    "const-blif");
  expect_equivalent(network,
                    io::read_bench_string(io::write_bench_string(network)),
                    "const-bench");
}

// Regression (fuzz-found): an unnamed node's fallback name "n<id>" could
// collide with an unrelated LUT explicitly named "n<id>" (the shrinker
// compacts node ids, so the reader-created unnamed constant landed on an
// id whose name an explicit signal already claimed). SignalNames must
// uniquify.
TEST(IoRoundtrip, FallbackNamesDoNotCollideWithExplicitNames) {
  net::Network network("collide");
  const net::NodeId pi = network.add_pi("pi0");
  // The constant is canonical and unnamed; its id is 1 here, and the LUT
  // below claims the name "n1" explicitly.
  const net::NodeId one = network.add_constant(true);
  const net::NodeId not_fanins[] = {pi};
  const net::NodeId lut =
      network.add_lut(not_fanins, tt::TruthTable::not_gate(), "n1");
  network.add_po(lut, "f");
  network.add_po(one, "g");
  ASSERT_EQ(one, net::NodeId{1});
  expect_equivalent(network, io::read_blif_string(io::write_blif_string(network)),
                    "collide-blif");
  expect_equivalent(network,
                    io::read_bench_string(io::write_bench_string(network)),
                    "collide-bench");
}

}  // namespace
}  // namespace simgen

// Whole-flow integration tests on suite benchmarks: the Figure 2 pipeline
// (random sim -> guided sim -> SAT sweeping) runs to completion, its
// accounting is consistent, and SimGen's guided vectors reduce the SAT
// work left after random simulation stalls.
#include <gtest/gtest.h>

#include "simgen_all.hpp"

namespace simgen {
namespace {

struct FlowOutcome {
  std::uint64_t cost_after_random = 0;
  std::uint64_t cost_after_guided = 0;
  sweep::SweepResult sweep;
};

FlowOutcome run_flow(const net::Network& network, core::Strategy strategy,
                     std::size_t guided_iterations) {
  FlowOutcome outcome;
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);

  sim::RandomSimOptions random_options;
  random_options.max_rounds = 1;  // paper Section 6.2 setup
  sim::run_random_simulation(simulator, classes, random_options);
  outcome.cost_after_random = classes.cost();

  core::GuidedSimOptions guided;
  guided.strategy = strategy;
  guided.iterations = guided_iterations;
  core::run_guided_simulation(simulator, classes, guided);
  outcome.cost_after_guided = classes.cost();

  sweep::Sweeper sweeper(network, sweep::SweepOptions{});
  outcome.sweep = sweeper.run(classes, simulator);
  return outcome;
}

TEST(Integration, FullFlowOnSuiteBenchmark) {
  const benchgen::CircuitSpec* spec = benchgen::find_benchmark("misex3c");
  ASSERT_NE(spec, nullptr);
  const net::Network network = benchgen::generate_mapped(*spec);

  const FlowOutcome outcome =
      run_flow(network, core::Strategy::kAiDcMffc, 20);
  EXPECT_LE(outcome.cost_after_guided, outcome.cost_after_random);
  EXPECT_EQ(outcome.sweep.unresolved, 0u);
  EXPECT_EQ(outcome.sweep.sat_calls,
            outcome.sweep.proven_equivalent + outcome.sweep.disproven);
}

TEST(Integration, GuidedSimulationReducesSatCalls) {
  // Compare SAT calls with and without the guided phase, averaged over a
  // couple of redundancy-rich circuits: guided simulation must not
  // increase the SAT work, and typically reduces it.
  std::uint64_t calls_without = 0, calls_with = 0;
  for (int seed = 0; seed < 3; ++seed) {
    benchgen::CircuitSpec spec;
    spec.name = "integration_red_" + std::to_string(seed);
    spec.num_pis = 14;
    spec.num_pos = 8;
    spec.num_gates = 280;
    spec.redundancy = 0.10;
    const net::Network network = benchgen::generate_mapped(spec);
    calls_without += run_flow(network, core::Strategy::kAiDcMffc, 0)
                         .sweep.sat_calls;
    calls_with += run_flow(network, core::Strategy::kAiDcMffc, 20)
                      .sweep.sat_calls;
  }
  EXPECT_LE(calls_with, calls_without);
}

TEST(Integration, AllStrategiesCompleteOnBenchmark) {
  const benchgen::CircuitSpec* spec = benchgen::find_benchmark("e64");
  ASSERT_NE(spec, nullptr);
  const net::Network network = benchgen::generate_mapped(*spec);
  for (const core::Strategy strategy : core::kAllStrategies) {
    const FlowOutcome outcome = run_flow(network, strategy, 10);
    EXPECT_EQ(outcome.sweep.unresolved, 0u)
        << core::strategy_name(strategy);
  }
}

TEST(Integration, StackedBenchmarkFlow) {
  // A small putontop stack end to end (Section 6.4's construction).
  const aig::Aig stacked =
      aig::put_on_top(benchgen::generate_circuit(*benchgen::find_benchmark("e64")), 2);
  const net::Network network = mapping::map_to_luts(stacked);
  const FlowOutcome outcome = run_flow(network, core::Strategy::kAiDcMffc, 10);
  EXPECT_EQ(outcome.sweep.unresolved, 0u);
}

TEST(Integration, BlifRoundTripThenCec) {
  // Serialize a mapped benchmark to BLIF, parse it back, and prove the
  // round trip equivalent with the full CEC stack.
  benchgen::CircuitSpec spec;
  spec.name = "integration_blif";
  spec.num_pis = 10;
  spec.num_pos = 5;
  spec.num_gates = 150;
  const net::Network original = benchgen::generate_mapped(spec);
  const net::Network reparsed =
      io::read_blif_string(io::write_blif_string(original));
  const sweep::CecResult result =
      sweep::check_equivalence(original, reparsed, sweep::CecOptions{});
  EXPECT_TRUE(result.equivalent);
}

TEST(Integration, HybridRandomThenSimGenMatchesFigure7Dynamic) {
  // Random simulation stalls; switching to SimGen must further reduce the
  // cost on a redundancy-rich circuit (the Figure 7 story).
  benchgen::CircuitSpec spec;
  spec.name = "integration_fig7";
  spec.num_pis = 16;
  spec.num_pos = 8;
  spec.num_gates = 400;
  spec.redundancy = 0.08;
  const net::Network network = benchgen::generate_mapped(spec);

  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 40;
  random_options.stagnation_rounds = 3;
  sim::run_random_simulation(simulator, classes, random_options);
  const std::uint64_t stuck = classes.cost();

  core::GuidedSimOptions guided;
  guided.strategy = core::Strategy::kAiDcMffc;
  guided.iterations = 20;
  core::run_guided_simulation(simulator, classes, guided);
  EXPECT_LE(classes.cost(), stuck);
}

}  // namespace
}  // namespace simgen

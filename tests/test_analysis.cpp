// Tests for structural queries: cones, DFS orders, statistics.
#include "network/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "benchgen/generator.hpp"

namespace simgen::net {
namespace {

// Shared fixture circuit:
//   g1 = a & b;  g2 = b & c;  g3 = g1 & g2;  po(g3), po(g1)
struct Diamond {
  Network network;
  NodeId a, b, c, g1, g2, g3;

  Diamond() {
    a = network.add_pi("a");
    b = network.add_pi("b");
    c = network.add_pi("c");
    const auto and2 = tt::TruthTable::and_gate(2);
    const std::array<NodeId, 2> f1{a, b};
    g1 = network.add_lut(f1, and2);
    const std::array<NodeId, 2> f2{b, c};
    g2 = network.add_lut(f2, and2);
    const std::array<NodeId, 2> f3{g1, g2};
    g3 = network.add_lut(f3, and2);
    network.add_po(g3);
    network.add_po(g1);
  }
};

TEST(Analysis, FaninConeContainsExactlyTheCone) {
  const Diamond d;
  const auto cone = fanin_cone_dfs(d.network, d.g3);
  EXPECT_EQ(cone.size(), 6u);  // a b c g1 g2 g3
  EXPECT_TRUE(std::find(cone.begin(), cone.end(), d.g3) != cone.end());

  const auto cone1 = fanin_cone_dfs(d.network, d.g1);
  EXPECT_EQ(cone1.size(), 3u);  // a b g1
  EXPECT_TRUE(std::find(cone1.begin(), cone1.end(), d.c) == cone1.end());
}

TEST(Analysis, DfsIsPostOrder) {
  // Every node must appear after all of its fanins.
  const Diamond d;
  const auto cone = fanin_cone_dfs(d.network, d.g3);
  std::vector<std::size_t> position(d.network.num_nodes(), ~std::size_t{0});
  for (std::size_t i = 0; i < cone.size(); ++i) position[cone[i]] = i;
  for (NodeId node : cone)
    for (NodeId fanin : d.network.fanins(node))
      EXPECT_LT(position[fanin], position[node]);
}

TEST(Analysis, MultiRootDfsDeduplicates) {
  const Diamond d;
  const std::array<NodeId, 2> roots{d.g1, d.g3};
  const auto cone = fanin_cone_dfs(d.network, roots);
  EXPECT_EQ(cone.size(), 6u);  // no duplicates
}

TEST(Analysis, ConePis) {
  const Diamond d;
  const auto pis3 = cone_pis(d.network, d.g3);
  EXPECT_EQ(pis3.size(), 3u);
  const auto pis1 = cone_pis(d.network, d.g1);
  EXPECT_EQ(pis1.size(), 2u);
  const auto pis_a = cone_pis(d.network, d.a);
  ASSERT_EQ(pis_a.size(), 1u);
  EXPECT_EQ(pis_a[0], d.a);
}

TEST(Analysis, FanoutCone) {
  const Diamond d;
  const auto cone_b = fanout_cone(d.network, d.b);
  // b reaches g1, g2, g3 and both POs, plus itself.
  EXPECT_EQ(cone_b.size(), 6u);
  const auto cone_g2 = fanout_cone(d.network, d.g2);
  EXPECT_EQ(cone_g2.size(), 3u);  // g2, g3, po(g3)
}

TEST(Analysis, InFaninCone) {
  const Diamond d;
  EXPECT_TRUE(in_fanin_cone(d.network, d.g3, d.a));
  EXPECT_TRUE(in_fanin_cone(d.network, d.g3, d.g3));
  EXPECT_FALSE(in_fanin_cone(d.network, d.g1, d.c));
  EXPECT_FALSE(in_fanin_cone(d.network, d.g1, d.g3));
}

TEST(Analysis, StatsMatchHandCount) {
  const Diamond d;
  const NetworkStats stats = compute_stats(d.network);
  EXPECT_EQ(stats.num_pis, 3u);
  EXPECT_EQ(stats.num_pos, 2u);
  EXPECT_EQ(stats.num_luts, 3u);
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_fanin, 2.0);
  EXPECT_EQ(stats.max_fanout, 2u);  // b and g1 both feed two readers
  EXPECT_FALSE(to_string(stats).empty());
}

TEST(Analysis, DfsScalesToGeneratedCircuit) {
  // Post-order property on a realistic network (exercises the iterative
  // stack on deep recursive structure).
  benchgen::CircuitSpec spec;
  spec.name = "analysis_scale";
  spec.num_gates = 800;
  const Network network = benchgen::generate_mapped(spec);
  const auto cone = fanin_cone_dfs(network, network.pos()[0]);
  std::vector<std::size_t> position(network.num_nodes(), ~std::size_t{0});
  for (std::size_t i = 0; i < cone.size(); ++i) position[cone[i]] = i;
  for (NodeId node : cone)
    for (NodeId fanin : network.fanins(node))
      ASSERT_LT(position[fanin], position[node]);
}

}  // namespace
}  // namespace simgen::net

/// \file test_journal.cpp
/// \brief Sweep journal: round-trips through both on-disk formats, the
/// live writer, structural validation, report aggregation against the
/// metrics registry, and the watchdog's flush-on-signal guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "simgen_all.hpp"

#if defined(__unix__)
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

using namespace simgen;
using obs::EventKind;
using obs::JournalEvent;
using obs::PatternSource;
using obs::PhaseId;
using obs::SatVerdict;

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// A small but representative event sequence: valid nesting, every kind.
std::vector<JournalEvent> sample_events() {
  std::vector<JournalEvent> events;
  const auto push = [&](EventKind kind, std::uint8_t code, std::uint64_t a,
                        std::uint64_t b = 0, std::uint64_t v0 = 0,
                        std::uint64_t v1 = 0, std::uint64_t v2 = 0,
                        std::uint64_t v3 = 0, std::uint32_t dur_us = 0,
                        std::uint16_t flags = 0) {
    JournalEvent event;
    event.t_ns = (events.size() + 1) * 1000;
    event.kind = kind;
    event.code = code;
    event.a = a;
    event.b = b;
    event.v0 = v0;
    event.v1 = v1;
    event.v2 = v2;
    event.v3 = v3;
    event.dur_us = dur_us;
    event.flags = flags;
    events.push_back(event);
  };
  push(EventKind::kRunBegin, 0, 8, 100, 40, 4);
  push(EventKind::kPhaseBegin, static_cast<std::uint8_t>(PhaseId::kRandomSim), 0);
  push(EventKind::kClassCreated, static_cast<std::uint8_t>(PatternSource::kRandom),
       7, 0, 5);
  push(EventKind::kClassSplit, static_cast<std::uint8_t>(PatternSource::kRandom),
       7, 0, 2, 5);
  push(EventKind::kPatternBatch,
       static_cast<std::uint8_t>(PatternSource::kRandom), 0, 0, 1, 9, 20, 0, 15);
  push(EventKind::kPhaseEnd, static_cast<std::uint8_t>(PhaseId::kRandomSim), 0,
       0, 20, 9, 0, 0, 120);
  push(EventKind::kPhaseBegin, static_cast<std::uint8_t>(PhaseId::kSweep), 0);
  // Format-2 solver introspection around the (7, 9) call: fingerprint
  // before the solve, milestones and the rollup inside it, the kSatCall
  // after — the emission order the inspector's join relies on.
  push(EventKind::kConeFingerprint, /*arm=*/2, 7, 9, /*support=*/6,
       /*nodes=*/11, /*depth=*/4);
  push(EventKind::kSolverRestart, 0, 7, 9, /*ordinal=*/1, /*conflicts=*/2,
       /*learnt db=*/3);
  push(EventKind::kSolverReduce, 0, 7, 9, /*deleted=*/2, /*before=*/3,
       /*after=*/1);
  push(EventKind::kSolverSolveStats, 0, 7, 9, /*learnt=*/3, /*lbd sum=*/6,
       /*lbd max=*/3, /*restarts=*/1);
  push(EventKind::kSatCall, static_cast<std::uint8_t>(SatVerdict::kUnsat), 7, 9,
       3, 50, 12, obs::pack_cone_learned(11, 3), 40);
  push(EventKind::kCertified, 1, 7, 9, 6, 8, 90, 0, 10);
  push(EventKind::kClassMerged, 0, 7, 9);
  push(EventKind::kSatCall, static_cast<std::uint8_t>(SatVerdict::kSat), 7, 13,
       1, 10, 4, obs::pack_cone_learned(5, 1), 9);
  push(EventKind::kHeartbeat, 0, 12, 3, 4, 2, 1, 2, 1000);
  push(EventKind::kWatchdog, 1, 2);
  push(EventKind::kSatCall, static_cast<std::uint8_t>(SatVerdict::kUnsat), 3, 0,
       2, 30, 7, obs::pack_cone_learned(9, 2), 25, /*flags=*/1);
  push(EventKind::kPhaseEnd, static_cast<std::uint8_t>(PhaseId::kSweep), 0, 0,
       0, 1, 0, 0, 900);
  push(EventKind::kRunEnd, 1, 0, 0, 4);
  return events;
}

TEST(JournalFile, BinaryRoundTripIsExact) {
  const std::string path = temp_path("roundtrip.jrnl");
  const std::vector<JournalEvent> events = sample_events();
  ASSERT_TRUE(obs::write_journal_file(path, events));

  std::vector<JournalEvent> loaded;
  std::string error;
  bool truncated = true;
  ASSERT_TRUE(obs::read_journal_file(path, loaded, &error, &truncated)) << error;
  EXPECT_FALSE(truncated);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(loaded[i], events[i]) << "event " << i;
}

TEST(JournalFile, JsonlRoundTripIsExact) {
  const std::string path = temp_path("roundtrip.jsonl");
  const std::vector<JournalEvent> events = sample_events();
  ASSERT_TRUE(obs::write_journal_file(path, events));

  // The ".jsonl" suffix selects the text format: a header object line, then
  // one JSON object per event.
  std::ifstream in(path);
  std::string first_line;
  ASSERT_TRUE(std::getline(in, first_line));
  EXPECT_NE(first_line.find("simgen_journal"), std::string::npos);

  std::vector<JournalEvent> loaded;
  std::string error;
  bool truncated = true;
  ASSERT_TRUE(obs::read_journal_file(path, loaded, &error, &truncated)) << error;
  EXPECT_FALSE(truncated);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(loaded[i], events[i]) << "event " << i;
}

TEST(JournalFile, SchedulerKindsRoundTripThroughJsonl) {
  // The PR-7 scheduler/resource kinds must survive the text format: the
  // JSONL writer prints kind_name() and the reader maps the string back,
  // so an exact round trip proves "task_run", "worker_stats", and
  // "resource_sample" are all registered on both sides.
  std::vector<JournalEvent> events;
  const auto push = [&](EventKind kind, std::uint8_t code, std::uint64_t a,
                        std::uint64_t b, std::uint64_t v0, std::uint64_t v1,
                        std::uint32_t dur_us) {
    JournalEvent event;
    event.t_ns = (events.size() + 1) * 500;
    event.kind = kind;
    event.code = code;
    event.a = a;
    event.b = b;
    event.v0 = v0;
    event.v1 = v1;
    event.dur_us = dur_us;
    events.push_back(event);
  };
  push(EventKind::kTaskRun, 0, /*task=*/3, /*worker=*/1, /*round=*/2,
       /*payload=*/77, 1200);
  push(EventKind::kTaskRun, 1, 0, 0, 0, 5, 900);
  push(EventKind::kTaskRun, 2, 4, 2, 0, 4, 15000);
  push(EventKind::kWorkerStats, 0, /*worker=*/1, /*tasks=*/12,
       /*steal_attempts=*/9, /*steal_successes=*/4, /*lock blocks=*/2);
  push(EventKind::kResourceSample, 0, /*rss kb=*/81234, /*peak kb=*/90111,
       /*allocs=*/0, /*bytes=*/0, 0);

  const std::string path = temp_path("scheduler_kinds.jsonl");
  ASSERT_TRUE(obs::write_journal_file(path, events));
  std::vector<JournalEvent> loaded;
  std::string error;
  ASSERT_TRUE(obs::read_journal_file(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(loaded[i], events[i]) << "event " << i;
  EXPECT_STREQ(obs::kind_name(EventKind::kTaskRun), "task_run");
  EXPECT_STREQ(obs::kind_name(EventKind::kWorkerStats), "worker_stats");
  EXPECT_STREQ(obs::kind_name(EventKind::kResourceSample), "resource_sample");
}

TEST(JournalFile, SolverIntrospectionKindsRoundTripThroughJsonl) {
  // The format-2 solver-introspection kinds must survive the text format
  // exactly like the scheduler kinds: kind_name() on the way out, the
  // string registry on the way back in.
  std::vector<JournalEvent> events;
  const auto push = [&](EventKind kind, std::uint8_t code, std::uint64_t a,
                        std::uint64_t b, std::uint64_t v0, std::uint64_t v1,
                        std::uint64_t v2, std::uint64_t v3,
                        std::uint16_t flags) {
    JournalEvent event;
    event.t_ns = (events.size() + 1) * 500;
    event.kind = kind;
    event.code = code;
    event.a = a;
    event.b = b;
    event.v0 = v0;
    event.v1 = v1;
    event.v2 = v2;
    event.v3 = v3;
    event.flags = flags;
    events.push_back(event);
  };
  push(EventKind::kConeFingerprint, 1, 40, 77, 9, 31, 6, 0, 0);
  push(EventKind::kSolverRestart, 0, 40, 77, 1, 100, 64, 0, 0);
  push(EventKind::kSolverReduce, 0, 40, 77, 32, 64, 32, 0, 0);
  push(EventKind::kSolverBudget, 0, 40, 77, 1000, 1000, 0, 0, 0);
  push(EventKind::kSolverSolveStats, 0, 12, 0, 5, 14, 6, 2, /*flags=*/1);

  const std::string path = temp_path("introspection_kinds.jsonl");
  ASSERT_TRUE(obs::write_journal_file(path, events));
  std::vector<JournalEvent> loaded;
  std::string error;
  ASSERT_TRUE(obs::read_journal_file(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(loaded[i], events[i]) << "event " << i;
  EXPECT_STREQ(obs::kind_name(EventKind::kConeFingerprint),
               "cone_fingerprint");
  EXPECT_STREQ(obs::kind_name(EventKind::kSolverRestart), "solver_restart");
  EXPECT_STREQ(obs::kind_name(EventKind::kSolverReduce), "solver_reduce");
  EXPECT_STREQ(obs::kind_name(EventKind::kSolverBudget), "solver_budget");
  EXPECT_STREQ(obs::kind_name(EventKind::kSolverSolveStats),
               "solver_solve_stats");
}

TEST(JournalFile, BinaryToleratesTruncatedTail) {
  const std::string path = temp_path("truncated.jrnl");
  const std::vector<JournalEvent> events = sample_events();
  ASSERT_TRUE(obs::write_journal_file(path, events));
  // Cut mid-record, as a killed run would: header + 2 events + 13 bytes.
  std::filesystem::resize_file(path, 32 + 2 * sizeof(JournalEvent) + 13);

  std::vector<JournalEvent> loaded;
  std::string error;
  bool truncated = false;
  ASSERT_TRUE(obs::read_journal_file(path, loaded, &error, &truncated)) << error;
  EXPECT_TRUE(truncated);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], events[0]);
  EXPECT_EQ(loaded[1], events[1]);
}

TEST(JournalFile, JsonlToleratesUnterminatedTail) {
  const std::string path = temp_path("tail.jsonl");
  ASSERT_TRUE(obs::write_journal_file(path, sample_events()));
  // Drop the final newline and half the last line.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 25);

  std::vector<JournalEvent> loaded;
  std::string error;
  bool truncated = false;
  ASSERT_TRUE(obs::read_journal_file(path, loaded, &error, &truncated)) << error;
  EXPECT_TRUE(truncated);
  EXPECT_EQ(loaded.size(), sample_events().size() - 1);
}

TEST(JournalFile, RejectsForeignBinary) {
  const std::string path = temp_path("garbage.jrnl");
  std::ofstream(path) << "this is not a journal at all, not even close";
  std::vector<JournalEvent> loaded;
  std::string error;
  EXPECT_FALSE(obs::read_journal_file(path, loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JournalFile, RejectsMalformedJsonlLine) {
  const std::string good = temp_path("good.jsonl");
  ASSERT_TRUE(obs::write_journal_file(good, sample_events()));
  std::string text;
  {
    std::ifstream in(good);
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const std::string bad = temp_path("bad.jsonl");
  std::ofstream(bad) << text << "{\"kind\":\"sat_call\",,,}\n";
  std::vector<JournalEvent> loaded;
  std::string error;
  EXPECT_FALSE(obs::read_journal_file(bad, loaded, &error));
  EXPECT_NE(error.find("line"), std::string::npos);
}

TEST(JournalCheck, AcceptsWellFormedSequences) {
  std::string error;
  EXPECT_TRUE(obs::check_journal(sample_events(), &error)) << error;
  EXPECT_TRUE(obs::check_journal({}, &error)) << error;
}

TEST(JournalCheck, RejectsStructuralViolations) {
  std::string error;

  std::vector<JournalEvent> bad_kind(1);
  bad_kind[0].kind = static_cast<EventKind>(200);
  EXPECT_FALSE(obs::check_journal(bad_kind, &error));

  std::vector<JournalEvent> bad_nesting(1);
  bad_nesting[0].kind = EventKind::kPhaseEnd;
  bad_nesting[0].code = static_cast<std::uint8_t>(PhaseId::kSweep);
  EXPECT_FALSE(obs::check_journal(bad_nesting, &error));

  std::vector<JournalEvent> bad_verdict(1);
  bad_verdict[0].kind = EventKind::kSatCall;
  bad_verdict[0].code = 9;
  EXPECT_FALSE(obs::check_journal(bad_verdict, &error));
}

TEST(JournalCheck, RejectsUnattributedClassSplit) {
  // The attribution cross-check: every split must name the pattern
  // source that caused it. kNone means refine() ran outside a
  // PatternScope — the runtime counterpart of the simgen-pattern-scope
  // tidy check.
  std::string error;
  std::vector<JournalEvent> split(1);
  split[0].kind = EventKind::kClassSplit;
  split[0].code = static_cast<std::uint8_t>(PatternSource::kNone);
  EXPECT_FALSE(obs::check_journal(split, &error));
  EXPECT_NE(error.find("attribution"), std::string::npos) << error;

  split[0].code = static_cast<std::uint8_t>(PatternSource::kCounterexample);
  EXPECT_TRUE(obs::check_journal(split, &error)) << error;

  // kClassCreated keeps allowing kNone: initial classes exist before any
  // pattern has run.
  std::vector<JournalEvent> created(1);
  created[0].kind = EventKind::kClassCreated;
  created[0].code = static_cast<std::uint8_t>(PatternSource::kNone);
  EXPECT_TRUE(obs::check_journal(created, &error)) << error;
}

TEST(JournalCheck, RejectsMalformedSolverIntrospectionEvents) {
  // --check must catch truncated or corrupted format-2 events: each kind
  // carries invariants a correct emitter can never violate.
  std::string error;
  std::vector<JournalEvent> events(1);

  events[0].kind = EventKind::kSolverRestart;
  events[0].v0 = 0;  // Ordinals are 1-based.
  events[0].v1 = 5;
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("1-based"), std::string::npos) << error;
  events[0].v0 = 6;  // More restarts than conflicts is impossible.
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("exceeds conflict count"), std::string::npos) << error;
  events[0].v0 = 2;
  EXPECT_TRUE(obs::check_journal(events, &error)) << error;

  events[0] = JournalEvent{};
  events[0].kind = EventKind::kSolverReduce;
  events[0].v0 = 30;  // Deleted more clauses than the DB held.
  events[0].v1 = 20;
  events[0].v2 = 10;
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("deleted more clauses"), std::string::npos) << error;
  events[0].v0 = 5;
  events[0].v2 = 25;  // A reduction cannot grow the DB.
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("grew the learnt DB"), std::string::npos) << error;
  events[0].v2 = 15;
  EXPECT_TRUE(obs::check_journal(events, &error)) << error;

  events[0] = JournalEvent{};
  events[0].kind = EventKind::kSolverBudget;
  events[0].v0 = 0;  // A budget hit implies a nonzero limit.
  events[0].v1 = 10;
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("without a conflict limit"), std::string::npos)
      << error;
  events[0].v0 = 20;  // Giving up before the limit is not a budget hit.
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("before the conflict limit"), std::string::npos)
      << error;
  events[0].v1 = 20;
  EXPECT_TRUE(obs::check_journal(events, &error)) << error;

  events[0] = JournalEvent{};
  events[0].kind = EventKind::kSolverSolveStats;
  events[0].v0 = 4;  // Every LBD is >= 1, so the sum bounds the count.
  events[0].v1 = 2;
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("LBD sum below learnt count"), std::string::npos)
      << error;
  events[0].v1 = 10;
  events[0].v2 = 11;  // One clause's LBD cannot exceed the sum of all.
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("LBD max exceeds LBD sum"), std::string::npos)
      << error;
  events[0].v0 = 0;  // LBD fields on a solve that learned nothing.
  events[0].v1 = 5;
  events[0].v2 = 2;
  EXPECT_FALSE(obs::check_journal(events, &error));
  EXPECT_NE(error.find("without learnt clauses"), std::string::npos) << error;
  events[0].v1 = 0;
  events[0].v2 = 0;
  EXPECT_TRUE(obs::check_journal(events, &error)) << error;
}

TEST(JournalReportTest, AggregatesSampleSequence) {
  const obs::JournalReport report = obs::build_report(sample_events());
  EXPECT_EQ(report.num_events, sample_events().size());
  EXPECT_EQ(report.sat_calls, 3u);
  EXPECT_EQ(report.sat_unsat, 2u);
  EXPECT_EQ(report.sat_sat, 1u);
  EXPECT_EQ(report.output_proofs, 1u);
  EXPECT_EQ(report.conflicts, 3u + 1u + 2u);
  EXPECT_EQ(report.class_created, 1u);
  EXPECT_EQ(report.class_split, 1u);
  EXPECT_EQ(report.class_merged, 1u);
  EXPECT_EQ(report.pattern_batches, 1u);
  EXPECT_EQ(report.pattern_splits, 1u);
  EXPECT_EQ(report.certified_ok, 1u);
  EXPECT_EQ(report.certified_fail, 0u);
  EXPECT_EQ(report.heartbeats, 1u);
  EXPECT_EQ(report.watchdog_fires, 1u);

  // Class 7's lifecycle: created, split, one merge via UNSAT, one disproof.
  const auto it = report.classes.find(7);
  ASSERT_NE(it, report.classes.end());
  EXPECT_EQ(it->second.created_size, 5u);
  EXPECT_EQ(it->second.created_by, PatternSource::kRandom);
  EXPECT_EQ(it->second.splits, 1u);
  EXPECT_EQ(it->second.merges, 1u);
  EXPECT_EQ(it->second.sat_calls, 2u);
  EXPECT_EQ(it->second.disproofs, 1u);
  EXPECT_EQ(it->second.max_cone_vars, 11u);
  EXPECT_FALSE(it->second.timeline.empty());

  // Phase accounting: the sweep phase saw both in-sweep SAT calls.
  const auto& sweep_phase =
      report.phases[static_cast<std::size_t>(PhaseId::kSweep)];
  EXPECT_EQ(sweep_phase.enters, 1u);
  EXPECT_EQ(sweep_phase.total_us, 900u);
  EXPECT_FALSE(report.folded.empty());

  // Solver-introspection totals and the per-call join.
  EXPECT_EQ(report.cone_fingerprints, 1u);
  EXPECT_EQ(report.solver_restarts, 1u);
  EXPECT_EQ(report.solver_reduces, 1u);
  EXPECT_EQ(report.reduce_deleted, 2u);
  EXPECT_EQ(report.solver_solve_stats, 1u);
  EXPECT_EQ(report.lbd_count, 3u);
  EXPECT_EQ(report.lbd_sum, 6u);
  EXPECT_EQ(report.lbd_max, 3u);
  ASSERT_EQ(report.restart_timeline.size(), 1u);
  EXPECT_EQ(report.restart_timeline[0].a, 7u);
  EXPECT_EQ(report.restart_timeline[0].ordinal, 1u);
  const auto joined =
      std::find_if(report.calls.begin(), report.calls.end(),
                   [](const obs::SatCallRecord& call) {
                     return call.a == 7 && call.b == 9 && !call.output_proof;
                   });
  ASSERT_NE(joined, report.calls.end());
  EXPECT_TRUE(joined->has_fingerprint);
  EXPECT_EQ(joined->strategy_arm, 2u);
  EXPECT_EQ(joined->cone_support, 6u);
  EXPECT_EQ(joined->cone_nodes, 11u);
  EXPECT_EQ(joined->cone_depth, 4u);
  EXPECT_TRUE(joined->has_solve_stats);
  EXPECT_EQ(joined->restarts, 1u);
  EXPECT_EQ(joined->reduces, 1u);
  EXPECT_EQ(joined->lbd_sum, 6u);
  EXPECT_EQ(joined->lbd_max, 3u);
  // The third call (output proof, pair key (3, 0, flags=1)) saw no
  // introspection events and must not inherit the (7, 9) join.
  const auto untouched =
      std::find_if(report.calls.begin(), report.calls.end(),
                   [](const obs::SatCallRecord& call) {
                     return call.output_proof;
                   });
  ASSERT_NE(untouched, report.calls.end());
  EXPECT_FALSE(untouched->has_fingerprint);
  EXPECT_FALSE(untouched->has_solve_stats);

  // All writers accept the report without choking.
  std::ostringstream out;
  const obs::InspectOptions options;
  obs::write_text_report(out, report, options);
  obs::write_timeline(out, report, 0, options);
  obs::write_folded_stacks(out, report, options);
  obs::write_sat_report(out, report, options);
  obs::write_html_report(out, report, options);
  EXPECT_NE(out.str().find("pattern effectiveness"), std::string::npos);
  EXPECT_NE(out.str().find("SAT hardness"), std::string::npos);
  EXPECT_NE(out.str().find("<html"), std::string::npos);
}

#ifndef SIMGEN_NO_TELEMETRY

TEST(JournalWriter, LiveEmitRoundTrips) {
  const std::string path = temp_path("live.jrnl");
  ASSERT_FALSE(obs::journal_enabled());
  ASSERT_TRUE(obs::Journal::instance().open(path));
  EXPECT_TRUE(obs::journal_enabled());
  EXPECT_FALSE(obs::Journal::instance().open(temp_path("second.jrnl")))
      << "a second journal must be refused while one is open";

  const std::vector<JournalEvent> events = sample_events();
  for (const JournalEvent& event : events) obs::Journal::instance().emit(event);
  obs::Journal::instance().close();
  EXPECT_FALSE(obs::journal_enabled());

  std::vector<JournalEvent> loaded;
  std::string error;
  ASSERT_TRUE(obs::read_journal_file(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(loaded[i], events[i]) << "event " << i;
}

TEST(JournalWriter, EmitStampsMonotonicTimestamps) {
  const std::string path = temp_path("stamped.jrnl");
  ASSERT_TRUE(obs::Journal::instance().open(path));
  for (int i = 0; i < 100; ++i)
    obs::journal_emit(EventKind::kHeartbeat, 0, static_cast<std::uint64_t>(i));
  obs::Journal::instance().close();

  std::vector<JournalEvent> loaded;
  ASSERT_TRUE(obs::read_journal_file(path, loaded));
  ASSERT_EQ(loaded.size(), 100u);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].a, i) << "single-thread emit order must be preserved";
    if (i > 0) {
      EXPECT_GE(loaded[i].t_ns, loaded[i - 1].t_ns);
    }
  }
}

/// Regression test for the epoch publication ordering in Journal::open.
/// emit() stamps t_ns against state.epoch, which open() writes just
/// before flipping `recording` to true; emitters must observe that write
/// via an acquire load of the flag. With the old relaxed load a thread
/// that raced open() could stamp against the stale (zero) epoch —
/// yielding a t_ns of the full steady_clock reading, hours not
/// microseconds — and TSan flags the unsynchronized epoch read. The
/// emitter threads here start before open() precisely to exercise that
/// window.
TEST(JournalWriter, ConcurrentEmitDuringOpenSeesFreshEpoch) {
  const std::string path = temp_path("race.jrnl");
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  emitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&stop, t] {
      while (!stop.load(std::memory_order_acquire))
        obs::journal_emit(EventKind::kHeartbeat, 0,
                          static_cast<std::uint64_t>(t));
    });
  }
  ASSERT_TRUE(obs::Journal::instance().open(path));
  // Let the emitters run against the open journal for a moment.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : emitters) thread.join();
  obs::Journal::instance().close();

  std::vector<JournalEvent> loaded;
  std::string error;
  ASSERT_TRUE(obs::read_journal_file(path, loaded, &error)) << error;
  EXPECT_FALSE(loaded.empty());
  // Every stamp must be measured from open(), not from the steady-clock
  // origin: anything over a minute means a stale epoch was used.
  for (const JournalEvent& event : loaded)
    EXPECT_LT(event.t_ns, 60ull * 1000 * 1000 * 1000);
}

/// The acceptance bar for the whole subsystem: a certified CEC run's
/// journal, replayed through build_report, must agree with the metrics
/// registry and the CecResult for the same run.
TEST(JournalIntegration, CertifiedCecTotalsMatchRegistry) {
  benchgen::CircuitSpec spec;
  spec.name = "journal_cec";
  spec.num_pis = 10;
  spec.num_pos = 5;
  spec.num_gates = 150;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network a = mapping::map_to_luts(graph);
  const net::Network b = aig::to_network(graph);

  const std::string path = temp_path("cec.jrnl");
  const obs::TelemetrySnapshot before = obs::capture_snapshot();
  ASSERT_TRUE(obs::Journal::instance().open(path));
  sweep::CecOptions options;
  options.certify = true;
  const sweep::CecResult result = sweep::check_equivalence(a, b, options);
  obs::Journal::instance().close();
  const obs::TelemetrySnapshot delta =
      obs::diff_snapshots(before, obs::capture_snapshot());
  ASSERT_TRUE(result.equivalent);

  std::vector<JournalEvent> events;
  std::string error;
  ASSERT_TRUE(obs::read_journal_file(path, events, &error)) << error;
  ASSERT_TRUE(obs::check_journal(events, &error)) << error;
  const obs::JournalReport report = obs::build_report(events);

  // Journal totals == registry counters for the same run.
  EXPECT_EQ(report.sat_calls, delta.counter_value("sat.solve_calls"));
  EXPECT_EQ(report.conflicts, delta.counter_value("sat.conflicts"));
  EXPECT_EQ(report.decisions, delta.counter_value("sat.decisions"));
  EXPECT_EQ(report.propagations, delta.counter_value("sat.propagations"));
  EXPECT_EQ(report.learned, delta.counter_value("sat.learned_clauses"));
  EXPECT_EQ(report.class_merged, delta.counter_value("sweep.proven"));
  EXPECT_EQ(report.sat_sat, delta.counter_value("sweep.disproven"));
  EXPECT_EQ(report.certified_ok, delta.counter_value("sweep.certified_unsat"));
  EXPECT_EQ(report.class_split, delta.counter_value("eq.splits"));
  EXPECT_EQ(report.pattern_splits, delta.counter_value("eq.splits"));

  // Format-2 solver introspection: every milestone the solvers counted
  // into the registry also reached the journal, and every solve carried
  // its fingerprint and rollup.
  EXPECT_EQ(report.solver_restarts, delta.counter_value("sat.restarts"));
  EXPECT_EQ(report.solver_reduces, delta.counter_value("sat.db_reductions"));
  EXPECT_EQ(report.lbd_count, delta.counter_value("sat.learned_clauses"))
      << "every learnt clause of a context-tagged solve records one LBD";
  EXPECT_EQ(report.cone_fingerprints, report.sat_calls)
      << "every SAT call is preceded by exactly one cone fingerprint";
  EXPECT_EQ(report.solver_solve_stats, report.sat_calls)
      << "every SAT call ends with exactly one solve-stats rollup";
  EXPECT_GT(report.lbd_sum, 0u);
  for (const obs::SatCallRecord& call : report.calls) {
    EXPECT_TRUE(call.has_fingerprint)
        << "call (" << call.a << ", " << call.b << ") missed its join";
    EXPECT_TRUE(call.has_solve_stats);
  }

  // Journal totals == the CecResult the caller saw.
  EXPECT_EQ(report.sat_calls,
            result.sweep_stats.sat_calls + result.output_sat_calls);
  EXPECT_EQ(report.output_proofs, result.outputs_proven);
  EXPECT_EQ(report.certified_ok,
            result.sweep_stats.certified_unsat + result.certified_outputs);
  EXPECT_EQ(report.certified_fail, 0u);

  // The run is bracketed and phase-attributed.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, EventKind::kRunBegin);
  EXPECT_GT(
      report.phases[static_cast<std::size_t>(PhaseId::kSweep)].enters, 0u);
  EXPECT_FALSE(report.folded.empty());
}

#if defined(__unix__)
/// SIGINT mid-run must leave valid journal/trace/metrics files: the child
/// raises SIGINT against itself while emitting, the watchdog flushes and
/// re-raises, and the parent validates everything the child left behind.
TEST(JournalWatchdog, SigintFlushLeavesValidFiles) {
  const std::string journal_path = temp_path("wd.jrnl");
  const std::string trace_path = temp_path("wd.trace.json");
  const std::string metrics_path = temp_path("wd.metrics.jsonl");
  std::remove(journal_path.c_str());
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest machinery from here on; _exit on any failure.
    alarm(30);
    obs::Tracer::instance().enable();
    if (!obs::Journal::instance().open(journal_path)) _exit(10);
    obs::set_exit_outputs(trace_path, metrics_path);
    obs::WatchdogOptions watchdog;
    if (!obs::start_watchdog(watchdog)) _exit(11);
    obs::sweep_progress().begin(1000, 100);
    obs::counter("watchdog_test.child_events").inc(5000);
    for (int i = 0; i < 5000; ++i)
      obs::journal_emit(EventKind::kHeartbeat, 0,
                        static_cast<std::uint64_t>(i));
    raise(SIGINT);
    // The handler only sets a flag; keep emitting until the watchdog
    // thread flushes and re-raises under the default disposition.
    for (std::uint64_t i = 0;; ++i)
      obs::journal_emit(EventKind::kHeartbeat, 0, i);
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child must die of the re-raised signal, not exit normally";
  EXPECT_EQ(WTERMSIG(status), SIGINT);

  // Journal: parseable (a truncated tail is fine) and structurally valid.
  std::vector<JournalEvent> events;
  std::string error;
  ASSERT_TRUE(obs::read_journal_file(journal_path, events, &error)) << error;
  EXPECT_TRUE(obs::check_journal(events, &error)) << error;
  const obs::JournalReport report = obs::build_report(events);
  EXPECT_GT(report.heartbeats, 0u);
  EXPECT_EQ(report.watchdog_fires, 1u);

  // Trace: the file must exist and be complete JSON (balanced braces).
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good()) << "trace file missing after SIGINT";
  std::stringstream trace_text;
  trace_text << trace.rdbuf();
  const std::string text = trace_text.str();
  EXPECT_NE(text.find("traceEvents"), std::string::npos);
  EXPECT_EQ(text.rfind("]}"), text.size() - 3) << "trace JSON not closed";

  // Metrics: every line is one complete JSON object.
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good()) << "metrics file missing after SIGINT";
  std::string line;
  std::size_t lines = 0;
  while (std::getline(metrics, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_GT(lines, 0u);
}
#endif  // __unix__

#else  // SIMGEN_NO_TELEMETRY

TEST(JournalWriter, CompiledOutWriterRefusesToOpen) {
  static_assert(!obs::journal_enabled());
  EXPECT_FALSE(obs::Journal::instance().open(temp_path("nt.jrnl")));
  // Emitting is a no-op, not a crash.
  obs::journal_emit(EventKind::kHeartbeat, 0, 1);
  EXPECT_EQ(obs::Journal::instance().events_written(), 0u);
}

#endif  // SIMGEN_NO_TELEMETRY

}  // namespace

// Golden DIMACS corpus: hand-picked CNF families under tests/sat_corpus/
// with the expected verdict recorded in a "c expect: SAT|UNSAT" header
// line. Each instance runs twice — inprocessing off (reference) and
// inprocessing before every solve — and both must reproduce the golden
// verdict; SAT models are checked against the file's own clauses and
// every UNSAT verdict is DRAT-certified. The families target specific
// inprocessing passes: pigeonhole (resolution-hard search), parity
// chains and cycles (SCC substitution), unit-heavy and unit-conflict
// instances (level-0 simplification), pure literals (zero-resolvent
// BVE), and duplicate/tautological clauses (normalization hygiene).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/drat.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

namespace simgen::sat {
namespace {

#ifndef SIMGEN_SAT_CORPUS_DIR
#error "SIMGEN_SAT_CORPUS_DIR must point at tests/sat_corpus"
#endif

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(SIMGEN_SAT_CORPUS_DIR)) {
    if (entry.path().extension() == ".cnf") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Golden verdict from the artifact's "c expect: ..." header line.
Result expected_verdict(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("c expect: SAT", 0) == 0) return Result::kSat;
    if (line.rfind("c expect: UNSAT", 0) == 0) return Result::kUnsat;
    if (!line.empty() && line[0] != 'c') break;
  }
  ADD_FAILURE() << path << " has no 'c expect:' header";
  return Result::kUnknown;
}

bool model_satisfies(const Solver& solver, const DimacsProblem& problem) {
  for (const std::vector<Lit>& clause : problem.clauses) {
    bool satisfied = false;
    for (const Lit lit : clause)
      if (solver.model_value(lit)) {
        satisfied = true;
        break;
      }
    if (!satisfied) return false;
  }
  return true;
}

void run_instance(const std::filesystem::path& path, bool inprocess) {
  const DimacsProblem problem = read_dimacs_file(path.string());
  const Result expected = expected_verdict(path);

  Solver solver;
  InprocessConfig config;
  config.enabled = inprocess;
  config.conflict_interval = 0;  // run the passes before every solve
  solver.set_inprocess_config(config);
  check::Certifier certifier(solver);
  // DIMACS variables are plain query variables — none frozen, so the
  // full pass set (including BVE and SCC substitution) applies.
  const bool consistent = load_problem(solver, problem);
  const Result verdict = consistent ? solver.solve() : Result::kUnsat;

  EXPECT_EQ(verdict, expected);
  if (verdict == Result::kSat) {
    EXPECT_TRUE(model_satisfies(solver, problem));
  }
  if (verdict == Result::kUnsat) {
    EXPECT_TRUE(certifier.certify_unsat({}));
  }
}

TEST(SatCorpus, DirectoryIsNotEmpty) { EXPECT_FALSE(corpus_files().empty()); }

TEST(SatCorpus, GoldenVerdictsWithoutInprocessing) {
  for (const std::filesystem::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    run_instance(path, /*inprocess=*/false);
  }
}

TEST(SatCorpus, GoldenVerdictsWithInprocessing) {
  for (const std::filesystem::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    run_instance(path, /*inprocess=*/true);
  }
}

}  // namespace
}  // namespace simgen::sat

// Inprocessing tests: differential property suite (solver with vs
// without inprocessing on seeded random CNFs), per-pass toggles, DRAT
// certification of every UNSAT, model checks against the original
// (pre-elimination) clauses, BVE/assumption interaction, and the
// assumption-prefix memoization contract.
#include "sat/inprocess.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/drat.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace simgen::sat {
namespace {

struct RandomCnf {
  std::size_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Small random CNF in the phase-transition-ish density band, with the
/// occasional unit and duplicate literal so normalization paths run too.
RandomCnf random_cnf(util::Rng& rng) {
  RandomCnf cnf;
  cnf.num_vars = rng.in_range(4, 14);
  const std::size_t num_clauses = rng.in_range(cnf.num_vars, 4 * cnf.num_vars);
  for (std::size_t i = 0; i < num_clauses; ++i) {
    const std::size_t width = rng.chance(0.06) ? 1 : rng.in_range(2, 4);
    std::vector<Lit> clause;
    for (std::size_t j = 0; j < width; ++j) {
      const Var var{static_cast<std::uint32_t>(rng.below(cnf.num_vars))};
      clause.push_back(rng.flip() ? pos(var) : neg(var));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

void load(Solver& solver, const RandomCnf& cnf) {
  for (std::size_t i = 0; i < cnf.num_vars; ++i) solver.new_var();
  for (const std::vector<Lit>& clause : cnf.clauses) solver.add_clause(clause);
}

/// The model must satisfy the ORIGINAL clauses — not whatever the
/// inprocessed database holds — or model reconstruction is broken.
bool model_satisfies(const Solver& solver, const RandomCnf& cnf) {
  for (const std::vector<Lit>& clause : cnf.clauses) {
    bool satisfied = false;
    for (const Lit lit : clause)
      if (solver.model_value(lit)) {
        satisfied = true;
        break;
      }
    if (!satisfied) return false;
  }
  return true;
}

/// One differential round: reference solver (inprocessing off) vs a
/// solver running \p config before every solve, DRAT-certified. Returns
/// the shared verdict for distribution sanity checks.
Result check_differential(const RandomCnf& cnf, const InprocessConfig& config,
                          std::uint64_t seed) {
  Solver reference;
  InprocessConfig off;
  off.enabled = false;
  reference.set_inprocess_config(off);
  load(reference, cnf);
  const Result expected = reference.solve();

  Solver solver;
  InprocessConfig every_solve = config;
  every_solve.conflict_interval = 0;  // run the passes before every solve
  solver.set_inprocess_config(every_solve);
  check::Certifier certifier(solver);
  load(solver, cnf);
  const Result verdict = solver.solve();

  EXPECT_EQ(verdict, expected) << "seed " << seed;
  if (verdict == Result::kSat) {
    EXPECT_TRUE(model_satisfies(solver, cnf)) << "seed " << seed;
  }
  if (verdict == Result::kUnsat) {
    EXPECT_TRUE(certifier.certify_unsat({})) << "seed " << seed;
  }

  // Second query under assumptions: exercises restore_eliminated (an
  // assumption may name a BVE-eliminated variable), the assumption skip
  // in the elimination passes, and incremental proof certification.
  if (verdict == Result::kSat && !solver.in_conflict()) {
    util::Rng rng(util::splitmix64(seed) ^ 0xa55);
    std::vector<Lit> assumptions;
    const std::size_t count = rng.in_range(1, 3);
    for (std::size_t i = 0; i < count; ++i) {
      const Var var{static_cast<std::uint32_t>(rng.below(cnf.num_vars))};
      assumptions.push_back(rng.flip() ? pos(var) : neg(var));
    }
    const Result expected2 = reference.solve(assumptions);
    const Result verdict2 = solver.solve(assumptions);
    EXPECT_EQ(verdict2, expected2) << "assumption seed " << seed;
    if (verdict2 == Result::kSat) {
      EXPECT_TRUE(model_satisfies(solver, cnf)) << "assumption seed " << seed;
      for (const Lit lit : assumptions)
        EXPECT_TRUE(solver.model_value(lit)) << "assumption seed " << seed;
    }
    if (verdict2 == Result::kUnsat) {
      EXPECT_TRUE(certifier.certify_unsat(assumptions))
          << "assumption seed " << seed;
    }
  }
  return expected;
}

TEST(Inprocess, DifferentialPropertyAllPasses) {
  // The headline property run: 10k seeded CNFs, all passes on, every
  // verdict cross-checked, every model re-checked, every UNSAT certified.
  std::uint64_t sat = 0, unsat = 0;
  for (std::uint64_t seed = 0; seed < 10'000; ++seed) {
    util::Rng rng(util::splitmix64(seed));
    const RandomCnf cnf = random_cnf(rng);
    const Result verdict = check_differential(cnf, InprocessConfig{}, seed);
    (verdict == Result::kSat ? sat : unsat) += 1;
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
  // The density band must actually exercise both verdicts.
  EXPECT_GT(sat, 100u);
  EXPECT_GT(unsat, 100u);
}

/// Each pass alone, and all-but-that-pass: a differential failure in
/// either direction names the guilty technique.
void run_toggle_suite(bool InprocessConfig::* pass) {
  for (std::uint64_t seed = 0; seed < 800; ++seed) {
    util::Rng rng(util::splitmix64(seed) ^ 0x70661e);
    const RandomCnf cnf = random_cnf(rng);
    InprocessConfig only;
    only.scc = only.probe = only.subsume = only.vivify = only.bve = false;
    only.*pass = true;
    check_differential(cnf, only, seed);
    if (::testing::Test::HasFailure()) return;
    InprocessConfig all_but;
    all_but.*pass = false;
    check_differential(cnf, all_but, seed);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(Inprocess, ToggleScc) { run_toggle_suite(&InprocessConfig::scc); }
TEST(Inprocess, ToggleProbe) { run_toggle_suite(&InprocessConfig::probe); }
TEST(Inprocess, ToggleSubsume) { run_toggle_suite(&InprocessConfig::subsume); }
TEST(Inprocess, ToggleVivify) { run_toggle_suite(&InprocessConfig::vivify); }
TEST(Inprocess, ToggleBve) { run_toggle_suite(&InprocessConfig::bve); }

TEST(Inprocess, PassesActuallyFire) {
  // The differential suite is vacuous if the passes never trigger; check
  // the counters actually move over the seed range.
  std::uint64_t deleted = 0, strengthened = 0, eliminated = 0, substituted = 0,
                failed = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    util::Rng rng(util::splitmix64(seed) ^ 0xf17e5);
    const RandomCnf cnf = random_cnf(rng);
    Solver solver;
    InprocessConfig config;
    config.conflict_interval = 0;
    solver.set_inprocess_config(config);
    load(solver, cnf);
    solver.solve();
    deleted += solver.stats().inprocess_deleted.value();
    strengthened += solver.stats().inprocess_strengthened.value();
    eliminated += solver.stats().inprocess_eliminated.value();
    substituted += solver.stats().inprocess_substituted.value();
    failed += solver.stats().inprocess_failed_literals.value();
  }
  EXPECT_GT(deleted, 0u);
  EXPECT_GT(strengthened, 0u);
  EXPECT_GT(eliminated, 0u);
  EXPECT_GT(substituted, 0u);
  EXPECT_GT(failed, 0u);
}

TEST(Inprocess, BveSkipsAssumptionVariable) {
  // v has one positive and one negative occurrence — prime BVE fodder —
  // but it is assumed in the very solve that triggers inprocessing, so
  // the pass must leave it alone and the model must assign it directly.
  Solver solver;
  InprocessConfig config;
  config.conflict_interval = 0;
  solver.set_inprocess_config(config);
  const Var v = solver.new_var();
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  solver.set_frozen(a);  // leave v as the only elimination candidate
  solver.set_frozen(b);
  solver.add_clause({pos(v), pos(a)});
  solver.add_clause({neg(v), pos(b)});
  ASSERT_EQ(solver.solve({pos(v)}), Result::kSat);
  EXPECT_TRUE(solver.model_value(v));
  EXPECT_TRUE(solver.model_value(b));  // v -> b
  EXPECT_EQ(solver.stats().inprocess_eliminated.value(), 0u)
      << "assumed variable must not be eliminated";
}

TEST(Inprocess, EliminatedVariableRestoredForLaterAssumption) {
  // First solve eliminates v (unfrozen, 1x1 occurrences); a later solve
  // assumes it, which must transparently restore its clauses.
  Solver solver;
  InprocessConfig config;
  config.conflict_interval = 0;
  solver.set_inprocess_config(config);
  const Var v = solver.new_var();
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  solver.add_clause({pos(v), pos(a)});
  solver.add_clause({neg(v), pos(b)});
  ASSERT_EQ(solver.solve(), Result::kSat);
  ASSERT_EQ(solver.solve({neg(v)}), Result::kSat);
  EXPECT_FALSE(solver.model_value(v));
  EXPECT_TRUE(solver.model_value(a));  // !v forces a through (v | a)
  ASSERT_EQ(solver.solve({neg(b)}), Result::kSat);
  EXPECT_FALSE(solver.model_value(v));  // (!v | b) with !b forces !v
  EXPECT_TRUE(solver.model_value(a));
}

TEST(Inprocess, FrozenVariablesSurviveElimination) {
  // Frozen variables (the sweeping encoder's contract) must never be
  // eliminated even when BVE would profit.
  Solver solver;
  InprocessConfig config;
  config.conflict_interval = 0;
  solver.set_inprocess_config(config);
  const Var v = solver.new_var();
  solver.set_frozen(v);
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  solver.set_frozen(a);
  solver.set_frozen(b);
  solver.add_clause({pos(v), pos(a)});
  solver.add_clause({neg(v), pos(b)});
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_EQ(solver.stats().inprocess_eliminated.value(), 0u);
}

TEST(Inprocess, MemoizedAssumptionPrefixSkipsRepropagation) {
  // Satellite regression: a repeated solve under identical assumptions
  // must not redo the assumption-prefix propagation. The chain makes the
  // single assumption force every variable, so a memoized second call
  // has literally nothing to propagate or decide.
  Solver solver;  // default config: interval 4000 never fires here
  std::vector<Var> vars;
  for (int i = 0; i < 200; ++i) vars.push_back(solver.new_var());
  for (int i = 0; i + 1 < 200; ++i)
    solver.add_clause({neg(vars[i]), pos(vars[i + 1])});
  ASSERT_EQ(solver.solve({pos(vars[0])}), Result::kSat);
  const std::uint64_t propagations = solver.stats().propagations.value();
  const std::uint64_t decisions = solver.stats().decisions.value();
  ASSERT_EQ(solver.solve({pos(vars[0])}), Result::kSat);
  EXPECT_EQ(solver.stats().propagations.value(), propagations)
      << "identical repeated solve repropagated the assumption prefix";
  EXPECT_EQ(solver.stats().decisions.value(), decisions);
  ASSERT_EQ(solver.solve({pos(vars[0])}), Result::kSat);
  EXPECT_EQ(solver.stats().propagations.value(), propagations);
}

TEST(Inprocess, MemoizedPrefixInvalidatedByNewClause) {
  // The memo must not survive database changes: adding a clause that
  // flips the verdict under the same assumptions has to take effect.
  Solver solver;
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  solver.add_clause({neg(x), pos(y)});
  ASSERT_EQ(solver.solve({pos(x)}), Result::kSat);
  EXPECT_TRUE(solver.model_value(y));
  solver.add_clause({neg(x), neg(y)});
  EXPECT_EQ(solver.solve({pos(x)}), Result::kUnsat);
  EXPECT_EQ(solver.solve({neg(x)}), Result::kSat);
}

TEST(Inprocess, ProbingRefutesWithoutSearch) {
  // x propagates a conflict both ways: probing alone must refute the
  // formula at inprocessing time (certified), before any decision.
  Solver solver;
  InprocessConfig config;
  config.conflict_interval = 0;
  config.scc = config.subsume = config.vivify = config.bve = false;
  solver.set_inprocess_config(config);
  check::Certifier certifier(solver);
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  const Var z = solver.new_var();
  solver.add_clause({pos(x), pos(y)});
  solver.add_clause({pos(x), neg(y)});
  solver.add_clause({neg(x), pos(z)});
  solver.add_clause({neg(x), neg(z)});
  EXPECT_EQ(solver.solve(), Result::kUnsat);
  EXPECT_TRUE(certifier.certify_unsat({}));
}

TEST(Inprocess, SccMergesEquivalentLiterals) {
  // A 3-cycle of implications x -> y -> z -> x is one SCC; substitution
  // must fire and the solutions must stay consistent.
  Solver solver;
  InprocessConfig config;
  config.conflict_interval = 0;
  solver.set_inprocess_config(config);
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  const Var z = solver.new_var();
  const Var w = solver.new_var();
  solver.add_clause({neg(x), pos(y)});
  solver.add_clause({neg(y), pos(z)});
  solver.add_clause({neg(z), pos(x)});
  solver.add_clause({pos(w), pos(x)});  // keep the formula nontrivial
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_GT(solver.stats().inprocess_substituted.value(), 0u);
  EXPECT_EQ(solver.model_value(x), solver.model_value(y));
  EXPECT_EQ(solver.model_value(y), solver.model_value(z));
  // Pin each phase of the class through a fresh assumption solve.
  ASSERT_EQ(solver.solve({pos(x)}), Result::kSat);
  EXPECT_TRUE(solver.model_value(y));
  EXPECT_TRUE(solver.model_value(z));
  ASSERT_EQ(solver.solve({neg(z)}), Result::kSat);
  EXPECT_FALSE(solver.model_value(x));
  EXPECT_FALSE(solver.model_value(y));
}

TEST(Inprocess, ContradictorySccIsUnsatCertified) {
  // x <-> !x via binary implications: the SCC pass must refute outright.
  Solver solver;
  InprocessConfig config;
  config.conflict_interval = 0;
  config.probe = config.subsume = config.vivify = config.bve = false;
  solver.set_inprocess_config(config);
  check::Certifier certifier(solver);
  const Var x = solver.new_var();
  solver.add_clause({pos(x), pos(x)});  // degenerate, normalizes to unit
  ASSERT_FALSE(solver.add_clause({neg(x), neg(x)}));
  EXPECT_EQ(solver.solve(), Result::kUnsat);
  EXPECT_TRUE(certifier.certify_unsat({}));

  Solver cyclic;
  cyclic.set_inprocess_config(config);
  check::Certifier cyclic_certifier(cyclic);
  const Var a = cyclic.new_var();
  const Var b = cyclic.new_var();
  cyclic.add_clause({neg(a), pos(b)});
  cyclic.add_clause({neg(b), neg(a)});
  cyclic.add_clause({pos(a), pos(b)});
  cyclic.add_clause({pos(a), neg(b)});
  EXPECT_EQ(cyclic.solve(), Result::kUnsat);
  EXPECT_TRUE(cyclic_certifier.certify_unsat({}));
}

TEST(Inprocess, DisabledConfigRunsNoPasses) {
  Solver solver;
  InprocessConfig config;
  config.enabled = false;
  config.conflict_interval = 0;
  solver.set_inprocess_config(config);
  const Var x = solver.new_var();
  const Var y = solver.new_var();
  solver.add_clause({pos(x), pos(y)});
  solver.add_clause({pos(x), neg(y)});
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_EQ(solver.stats().inprocess_runs.value(), 0u);
}

}  // namespace
}  // namespace simgen::sat

// Equivalence-class manager tests: refinement, Eq. 5 cost, node removal,
// singleton dropping.
#include "sim/eqclass.hpp"

#include <gtest/gtest.h>

#include <array>

namespace simgen::sim {
namespace {

TEST(EquivClasses, StartsAsOneClass) {
  EquivClasses classes({net::NodeId{1}, net::NodeId{2}, net::NodeId{3}, net::NodeId{4}});
  EXPECT_EQ(classes.num_classes(), 1u);
  EXPECT_EQ(classes.cost(), 3u);  // Eq. 5: size-1
  EXPECT_EQ(classes.num_live_nodes(), 4u);
  EXPECT_FALSE(classes.fully_refined());
}

TEST(EquivClasses, SingleCandidateIsAlreadyRefined) {
  EquivClasses classes({net::NodeId{7}});
  EXPECT_TRUE(classes.fully_refined());
  EXPECT_EQ(classes.cost(), 0u);
}

TEST(EquivClasses, RefineSplitsByValue) {
  EquivClasses classes({net::NodeId{0}, net::NodeId{1}, net::NodeId{2}, net::NodeId{3}});
  // Node values indexed by NodeId: {0,1}->0xA, {2}->0xB, {3}->0xC.
  const std::array<PatternWord, 4> values{0xA, 0xA, 0xB, 0xC};
  const std::size_t splits = classes.refine(values);
  EXPECT_EQ(splits, 1u);
  EXPECT_EQ(classes.num_classes(), 1u);  // singletons dropped
  EXPECT_EQ(classes.cost(), 1u);
  EXPECT_EQ(classes.num_live_nodes(), 2u);
}

TEST(EquivClasses, RefineIsStableWhenValuesAgree) {
  EquivClasses classes({net::NodeId{0}, net::NodeId{1}, net::NodeId{2}});
  const std::array<PatternWord, 3> values{5, 5, 5};
  EXPECT_EQ(classes.refine(values), 0u);
  EXPECT_EQ(classes.num_classes(), 1u);
  EXPECT_EQ(classes.cost(), 2u);
}

TEST(EquivClasses, CostIsMonotoneUnderRefinement) {
  EquivClasses classes({net::NodeId{0}, net::NodeId{1}, net::NodeId{2}, net::NodeId{3}, net::NodeId{4}, net::NodeId{5}});
  std::uint64_t last = classes.cost();
  const std::array<PatternWord, 6> round1{1, 1, 1, 2, 2, 2};
  classes.refine(round1);
  EXPECT_LE(classes.cost(), last);
  last = classes.cost();
  const std::array<PatternWord, 6> round2{1, 3, 1, 2, 2, 4};
  classes.refine(round2);
  EXPECT_LE(classes.cost(), last);
}

TEST(EquivClasses, FullRefinementEmptiesClasses) {
  EquivClasses classes({net::NodeId{0}, net::NodeId{1}, net::NodeId{2}});
  const std::array<PatternWord, 3> values{1, 2, 3};
  classes.refine(values);
  EXPECT_TRUE(classes.fully_refined());
  EXPECT_EQ(classes.cost(), 0u);
  EXPECT_EQ(classes.num_live_nodes(), 0u);
}

TEST(EquivClasses, RemoveNodeMergesProvenPair) {
  EquivClasses classes({net::NodeId{0}, net::NodeId{1}, net::NodeId{2}});
  classes.remove_node(net::NodeId{1});
  EXPECT_EQ(classes.num_classes(), 1u);
  EXPECT_EQ(classes.cost(), 1u);
  classes.remove_node(net::NodeId{2});
  // The class is now a singleton {0}: dropped.
  EXPECT_TRUE(classes.fully_refined());
}

TEST(EquivClasses, RemoveUnknownNodeIsNoOp) {
  EquivClasses classes({net::NodeId{0}, net::NodeId{1}, net::NodeId{2}});
  classes.remove_node(net::NodeId{99});
  EXPECT_EQ(classes.cost(), 2u);
}

TEST(EquivClasses, RepresentativeIsFirstMember) {
  EquivClasses classes({net::NodeId{5}, net::NodeId{3}, net::NodeId{9}});
  const auto members = classes.class_members(ClassId{0});
  EXPECT_EQ(members[0], 5u);  // candidate order preserved
}

TEST(EquivClasses, OverLutsSelectsOnlyLuts) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  network.add_constant(true);
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g1 = network.add_lut(f, tt::TruthTable::and_gate(2));
  const net::NodeId g2 = network.add_lut(f, tt::TruthTable::or_gate(2));
  network.add_po(g1);
  network.add_po(g2);

  const EquivClasses classes = EquivClasses::over_luts(network);
  EXPECT_EQ(classes.num_live_nodes(), 2u);
  EXPECT_EQ(classes.cost(), 1u);
}

}  // namespace
}  // namespace simgen::sim

// Cut enumeration and LUT mapper tests. The decisive property: the mapped
// network computes exactly the AIG's function (checked by word simulation
// over many random patterns).
#include "mapping/lut_mapper.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchgen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::mapping {
namespace {

TEST(Cuts, MergeRespectsSizeBound) {
  Cut a, b, out;
  a.leaves = {1, 3, 5};
  a.size = 3;
  b.leaves = {2, 3, 7, 9};
  b.size = 4;
  ASSERT_TRUE(merge_cuts(a, b, 6, out));
  EXPECT_EQ(out.size, 6u);  // union {1,2,3,5,7,9}
  EXPECT_EQ(out.leaves[0], 1u);
  EXPECT_EQ(out.leaves[5], 9u);
  EXPECT_FALSE(merge_cuts(a, b, 5, out));
}

TEST(Cuts, SubsetDomination) {
  Cut small, large;
  small.leaves = {1, 3};
  small.size = 2;
  small.signature = (1u << 1) | (1u << 3);
  large.leaves = {1, 2, 3};
  large.size = 3;
  large.signature = (1u << 1) | (1u << 2) | (1u << 3);
  EXPECT_TRUE(small.subset_of(large));
  EXPECT_FALSE(large.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
}

TEST(Cuts, ExpandCutFunctionRemapsVariables) {
  // Function over leaves {4, 9}: and. Expanded to leaves {2, 4, 9}: must
  // depend on positions 1 and 2, not 0.
  Cut from;
  from.leaves = {4, 9};
  from.size = 2;
  Cut to;
  to.leaves = {2, 4, 9};
  to.size = 3;
  const auto expanded =
      expand_cut_function(tt::TruthTable::and_gate(2), from, to);
  EXPECT_FALSE(expanded.depends_on(0));
  EXPECT_TRUE(expanded.depends_on(1));
  EXPECT_TRUE(expanded.depends_on(2));
  EXPECT_EQ(expanded, tt::TruthTable::projection(3, 1) &
                          tt::TruthTable::projection(3, 2));
}

TEST(Cuts, EnumerationOptionsValidated) {
  aig::Aig graph;
  graph.add_pi();
  EXPECT_THROW(CutSet(graph, CutEnumerationOptions{9, 8}), std::invalid_argument);
  EXPECT_THROW(CutSet(graph, CutEnumerationOptions{1, 8}), std::invalid_argument);
}

TEST(Cuts, TrivialCutAlwaysPresent) {
  aig::Aig graph;
  const aig::Lit a = graph.add_pi();
  const aig::Lit b = graph.add_pi();
  const aig::Lit g = graph.and2(a, b);
  graph.add_po(g);
  const CutSet cuts(graph, CutEnumerationOptions{6, 4});
  const auto& list = cuts.cuts_of(aig::lit_node(g));
  bool has_trivial = false;
  for (const Cut& cut : list)
    if (cut.size == 1 && cut.leaf(0) == aig::lit_node(g)) has_trivial = true;
  EXPECT_TRUE(has_trivial);
}

TEST(Mapper, TinyCircuitExact) {
  // f = (a & b) ^ c fits one 3-LUT; depth-oriented 6-LUT mapping should
  // produce a single-LUT network of depth 1.
  aig::Aig graph("tiny");
  const aig::Lit a = graph.add_pi();
  const aig::Lit b = graph.add_pi();
  const aig::Lit c = graph.add_pi();
  graph.add_po(graph.xor2(graph.and2(a, b), c));

  MapperStats stats;
  const net::Network network = map_to_luts(graph, MapperOptions{}, &stats);
  EXPECT_EQ(stats.num_luts, 1u);
  EXPECT_EQ(stats.depth, 1u);
  network.check_invariants();
}

TEST(Mapper, RespectsLutSizeBound) {
  benchgen::CircuitSpec spec;
  spec.name = "mapper_bound";
  spec.num_gates = 600;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  for (unsigned k : {3u, 4u, 6u}) {
    MapperOptions options;
    options.lut_size = k;
    const net::Network network = map_to_luts(graph, options);
    network.for_each_lut([&](net::NodeId id) {
      EXPECT_LE(network.fanins(id).size(), k);
    });
  }
}

TEST(Mapper, SmallerKMoreLuts) {
  benchgen::CircuitSpec spec;
  spec.name = "mapper_k_compare";
  spec.num_gates = 500;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  MapperOptions k3;
  k3.lut_size = 3;
  MapperOptions k6;
  k6.lut_size = 6;
  MapperStats s3, s6;
  (void)map_to_luts(graph, k3, &s3);
  (void)map_to_luts(graph, k6, &s6);
  EXPECT_GT(s3.num_luts, s6.num_luts);
  EXPECT_GE(s3.depth, s6.depth);
}

TEST(Mapper, ComplementedAndConstantPos) {
  aig::Aig graph("po_variants");
  const aig::Lit a = graph.add_pi();
  const aig::Lit b = graph.add_pi();
  const aig::Lit g = graph.and2(a, b);
  graph.add_po(aig::lit_not(g));   // complemented internal
  graph.add_po(aig::lit_not(a));   // complemented PI
  graph.add_po(aig::kLitTrue);     // constant
  graph.add_po(g);                 // plain

  const net::Network network = map_to_luts(graph);
  network.check_invariants();
  sim::Simulator sim(network);
  util::Rng rng(9);
  std::vector<std::uint64_t> words{rng(), rng()};
  const auto aig_out = graph.simulate_words(words);
  sim.simulate_word(words);
  for (std::size_t i = 0; i < network.num_pos(); ++i)
    EXPECT_EQ(sim.value(network.pos()[i]), aig_out[i]) << "PO " << i;
}

// The headline property, across styles and seeds.
class MapperEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(MapperEquivalence, MappedNetworkMatchesAig) {
  benchgen::CircuitSpec spec;
  spec.name = "mapper_equiv_" + std::to_string(GetParam());
  spec.num_gates = 400 + GetParam() * 100;
  spec.style = static_cast<benchgen::CircuitStyle>(GetParam() % 3);
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network network = map_to_luts(graph);
  network.check_invariants();

  sim::Simulator sim(network);
  util::Rng rng(100 + GetParam());
  for (int round = 0; round < 16; ++round) {
    std::vector<std::uint64_t> words(graph.num_pis());
    for (auto& w : words) w = rng();
    const auto aig_out = graph.simulate_words(words);
    sim.simulate_word(words);
    for (std::size_t i = 0; i < network.num_pos(); ++i)
      ASSERT_EQ(sim.value(network.pos()[i]), aig_out[i])
          << "seed " << GetParam() << " PO " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperEquivalence,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace simgen::mapping

namespace simgen::mapping {
namespace {

TEST(Mapper, NoStructurallyDuplicateLuts) {
  // The mapper must strash emitted LUTs: no two internal nodes may share
  // both fanin list and function (a production netlist database property;
  // duplicates would flood the sweeping classes with trivial pairs).
  benchgen::CircuitSpec spec;
  spec.name = "mapper_strash";
  spec.num_gates = 600;
  spec.redundancy = 0.12;
  const net::Network network = benchgen::generate_mapped(spec);
  std::set<std::pair<std::vector<net::NodeId>, std::uint64_t>> seen;
  network.for_each_lut([&](net::NodeId id) {
    const auto fanins = network.fanins(id);
    const auto key = std::make_pair(
        std::vector<net::NodeId>(fanins.begin(), fanins.end()),
        network.node(id).function.hash());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate LUT " << id;
  });
}

TEST(Mapper, ReassociatedExpressionsShareOneLut) {
  // a&(b&c) and (a&b)&c are distinct AIG nodes but the same 3-leaf cut
  // function; the mapped network must emit a single LUT for both.
  aig::Aig graph("reassoc");
  const aig::Lit a = graph.add_pi();
  const aig::Lit b = graph.add_pi();
  const aig::Lit c = graph.add_pi();
  const aig::Lit left = graph.and2(a, graph.and2(b, c));
  const aig::Lit right = graph.and2(graph.and2(a, b), c);
  EXPECT_NE(left, right);  // strash alone cannot merge them
  graph.add_po(left);
  graph.add_po(right);
  MapperStats stats;
  (void)map_to_luts(graph, MapperOptions{}, &stats);
  EXPECT_EQ(stats.num_luts, 1u);
}

}  // namespace
}  // namespace simgen::mapping

namespace simgen::mapping {
namespace {

TEST(Mapper, AreaModeSavesLutsDepthModeSavesDepth) {
  // On a batch of generated circuits the two objectives must realize
  // their namesakes on average: area mode no more LUTs, depth mode no
  // more depth.
  std::size_t area_luts = 0, depth_luts = 0;
  unsigned area_depth = 0, depth_depth = 0;
  for (unsigned seed = 0; seed < 4; ++seed) {
    benchgen::CircuitSpec spec;
    spec.name = "mapper_objective_" + std::to_string(seed);
    spec.num_gates = 500;
    const aig::Aig graph = benchgen::generate_circuit(spec);
    MapperOptions depth_options;
    MapperOptions area_options;
    area_options.objective = MapObjective::kArea;
    MapperStats ds, as;
    (void)map_to_luts(graph, depth_options, &ds);
    (void)map_to_luts(graph, area_options, &as);
    depth_luts += ds.num_luts;
    area_luts += as.num_luts;
    depth_depth += ds.depth;
    area_depth += as.depth;
  }
  EXPECT_LE(area_luts, depth_luts);
  EXPECT_LE(depth_depth, area_depth);
}

class AreaMapperEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(AreaMapperEquivalence, AreaMappedNetworkMatchesAig) {
  benchgen::CircuitSpec spec;
  spec.name = "area_equiv_" + std::to_string(GetParam());
  spec.num_gates = 400;
  spec.style = static_cast<benchgen::CircuitStyle>(GetParam() % 3);
  const aig::Aig graph = benchgen::generate_circuit(spec);
  MapperOptions options;
  options.objective = MapObjective::kArea;
  const net::Network network = map_to_luts(graph, options);
  network.check_invariants();

  sim::Simulator sim(network);
  util::Rng rng(500 + GetParam());
  for (int round = 0; round < 12; ++round) {
    std::vector<std::uint64_t> words(graph.num_pis());
    for (auto& w : words) w = rng();
    const auto aig_out = graph.simulate_words(words);
    sim.simulate_word(words);
    for (std::size_t i = 0; i < network.num_pos(); ++i)
      ASSERT_EQ(sim.value(network.pos()[i]), aig_out[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AreaMapperEquivalence,
                         ::testing::Values(0u, 1u, 2u, 3u));

}  // namespace
}  // namespace simgen::mapping

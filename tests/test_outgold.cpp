// OUTgold policy tests (paper Section 3 / Section 6.1).
#include "simgen/outgold.hpp"

#include <gtest/gtest.h>

#include <array>

namespace simgen::core {
namespace {

TEST(OutGold, AlternatesByNodeIdOrder) {
  const std::array<net::NodeId, 4> members{net::NodeId{9}, net::NodeId{3}, net::NodeId{7}, net::NodeId{5}};
  const auto targets = make_outgold(members);
  ASSERT_EQ(targets.size(), 4u);
  // Sorted: 3, 5, 7, 9 — alternating starting at false.
  EXPECT_EQ(targets[0].node, 3u);
  EXPECT_FALSE(targets[0].gold);
  EXPECT_EQ(targets[1].node, 5u);
  EXPECT_TRUE(targets[1].gold);
  EXPECT_EQ(targets[2].node, 7u);
  EXPECT_FALSE(targets[2].gold);
  EXPECT_EQ(targets[3].node, 9u);
  EXPECT_TRUE(targets[3].gold);
}

TEST(OutGold, EqualZeroOneSplit) {
  std::vector<net::NodeId> members(10);
  for (net::NodeId i{0}; i < 10; ++i) members[i] = i;
  const auto targets = make_outgold(members);
  int ones = 0;
  for (const Target& target : targets) ones += target.gold ? 1 : 0;
  EXPECT_EQ(ones, 5);
}

TEST(OutGold, OddSizeIsBalancedWithinOne) {
  std::vector<net::NodeId> members(7);
  for (net::NodeId i{0}; i < 7; ++i) members[i] = i;
  const auto targets = make_outgold(members);
  int ones = 0;
  for (const Target& target : targets) ones += target.gold ? 1 : 0;
  EXPECT_TRUE(ones == 3 || ones == 4);
}

TEST(OutGold, FirstValueFlipsPolarity) {
  const std::array<net::NodeId, 2> members{net::NodeId{1}, net::NodeId{2}};
  const auto targets = make_outgold(members, /*first_value=*/true);
  EXPECT_TRUE(targets[0].gold);
  EXPECT_FALSE(targets[1].gold);
}

TEST(OutGold, OrderTargetsByDepthIsDescendingAndStable) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const std::array<net::NodeId, 1> f1{a};
  const net::NodeId g1 = network.add_lut(f1, tt::TruthTable::not_gate());
  const std::array<net::NodeId, 1> f2{g1};
  const net::NodeId g2 = network.add_lut(f2, tt::TruthTable::not_gate());
  const std::array<net::NodeId, 1> f3{a};
  const net::NodeId g3 = network.add_lut(f3, tt::TruthTable::buffer());
  network.add_po(g2);
  network.add_po(g3);

  std::vector<Target> targets{{g3, false}, {g1, true}, {g2, false}};
  order_targets_by_depth(network, targets);
  EXPECT_EQ(targets[0].node, g2);  // level 2 first
  // Stability: g3 (level 1) appeared before g1 (level 1) and stays first.
  EXPECT_EQ(targets[1].node, g3);
  EXPECT_EQ(targets[2].node, g1);
}

}  // namespace
}  // namespace simgen::core

namespace simgen::core {
namespace {

// Fixture with known levels and a PI to observe.
struct PolicyFixture {
  net::Network network;
  net::NodeId g_l1, g_l2, g_l3;

  PolicyFixture() {
    const net::NodeId a = network.add_pi();
    const std::array<net::NodeId, 1> f1{a};
    g_l1 = network.add_lut(f1, tt::TruthTable::buffer());
    const std::array<net::NodeId, 1> f2{g_l1};
    g_l2 = network.add_lut(f2, tt::TruthTable::not_gate());
    const std::array<net::NodeId, 1> f3{g_l2};
    g_l3 = network.add_lut(f3, tt::TruthTable::not_gate());
    network.add_po(g_l3);
  }
};

TEST(OutGoldPolicy, Names) {
  EXPECT_EQ(outgold_policy_name(OutGoldPolicy::kAlternating), "alternating");
  EXPECT_EQ(outgold_policy_name(OutGoldPolicy::kDepthAlternating),
            "depth-alternating");
  EXPECT_EQ(outgold_policy_name(OutGoldPolicy::kAdaptiveComplement),
            "adaptive-complement");
}

TEST(OutGoldPolicy, AlternatingMatchesLegacyFunction) {
  const PolicyFixture fx;
  const std::array<net::NodeId, 3> members{fx.g_l3, fx.g_l1, fx.g_l2};
  const auto via_policy = make_outgold_with_policy(
      fx.network, members, OutGoldPolicy::kAlternating);
  const auto legacy = make_outgold(members);
  ASSERT_EQ(via_policy.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(via_policy[i].node, legacy[i].node);
    EXPECT_EQ(via_policy[i].gold, legacy[i].gold);
  }
}

TEST(OutGoldPolicy, DepthAlternatingOrdersByLevel) {
  const PolicyFixture fx;
  const std::array<net::NodeId, 3> members{fx.g_l1, fx.g_l2, fx.g_l3};
  const auto targets = make_outgold_with_policy(
      fx.network, members, OutGoldPolicy::kDepthAlternating);
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_EQ(targets[0].node, fx.g_l3);  // deepest first
  EXPECT_FALSE(targets[0].gold);
  EXPECT_EQ(targets[1].node, fx.g_l2);
  EXPECT_TRUE(targets[1].gold);
  EXPECT_EQ(targets[2].node, fx.g_l1);
  EXPECT_FALSE(targets[2].gold);
}

TEST(OutGoldPolicy, AdaptiveComplementStartsFromObservedComplement) {
  const PolicyFixture fx;
  const std::array<net::NodeId, 2> members{fx.g_l1, fx.g_l2};
  // Observed values: bit 0 of each node's last word; make both 1.
  std::vector<std::uint64_t> observed(fx.network.num_nodes(), ~0ull);
  const auto targets = make_outgold_with_policy(
      fx.network, members, OutGoldPolicy::kAdaptiveComplement, observed);
  // First (lowest-id) member demands the complement of the observed 1.
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].node, fx.g_l1);
  EXPECT_FALSE(targets[0].gold);
  EXPECT_TRUE(targets[1].gold);

  // Observed 0 flips the anchor.
  std::vector<std::uint64_t> observed0(fx.network.num_nodes(), 0);
  const auto flipped = make_outgold_with_policy(
      fx.network, members, OutGoldPolicy::kAdaptiveComplement, observed0);
  EXPECT_TRUE(flipped[0].gold);
}

TEST(OutGoldPolicy, AdaptiveWithoutObservationsFallsBack) {
  const PolicyFixture fx;
  const std::array<net::NodeId, 2> members{fx.g_l1, fx.g_l2};
  const auto targets = make_outgold_with_policy(
      fx.network, members, OutGoldPolicy::kAdaptiveComplement);
  EXPECT_FALSE(targets[0].gold);  // kAlternating default
}

TEST(OutGoldPolicy, AllPoliciesBalanceGolds) {
  const PolicyFixture fx;
  const std::array<net::NodeId, 3> members{fx.g_l1, fx.g_l2, fx.g_l3};
  std::vector<std::uint64_t> observed(fx.network.num_nodes(), ~0ull);
  for (const auto policy :
       {OutGoldPolicy::kAlternating, OutGoldPolicy::kDepthAlternating,
        OutGoldPolicy::kAdaptiveComplement}) {
    const auto targets =
        make_outgold_with_policy(fx.network, members, policy, observed);
    int ones = 0;
    for (const Target& target : targets) ones += target.gold ? 1 : 0;
    EXPECT_TRUE(ones == 1 || ones == 2) << outgold_policy_name(policy);
  }
}

}  // namespace
}  // namespace simgen::core

// BENCH reader/writer tests (ITC'99 distribution format).
#include "io/bench.hpp"

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::io {
namespace {

void expect_same_function(const net::Network& a, const net::Network& b,
                          int rounds = 4) {
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  sim::Simulator sim_a(a), sim_b(b);
  util::Rng rng(77);
  for (int round = 0; round < rounds; ++round) {
    std::vector<sim::PatternWord> words(a.num_pis());
    for (auto& w : words) w = rng();
    sim_a.simulate_word(words);
    sim_b.simulate_word(words);
    for (std::size_t i = 0; i < a.num_pos(); ++i)
      ASSERT_EQ(sim_a.value(a.pos()[i]), sim_b.value(b.pos()[i]));
  }
}

constexpr const char* kSample = R"(
# comment line
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
OUTPUT(g)
t1 = AND(a, b)
t2 = XOR(t1, c)
f = NOT(t2)
g = NOR(a, b, c)
)";

TEST(BenchReader, ParsesGates) {
  const net::Network network = read_bench_string(kSample);
  EXPECT_EQ(network.num_pis(), 3u);
  EXPECT_EQ(network.num_pos(), 2u);
  EXPECT_EQ(network.num_luts(), 4u);

  sim::Simulator sim(network);
  const sim::PatternWord a = 0xaaaaaaaaaaaaaaaaull;
  const sim::PatternWord b = 0xccccccccccccccccull;
  const sim::PatternWord c = 0xf0f0f0f0f0f0f0f0ull;
  sim.simulate_word(std::vector<sim::PatternWord>{a, b, c});
  EXPECT_EQ(sim.value(network.pos()[0]), ~((a & b) ^ c));
  EXPECT_EQ(sim.value(network.pos()[1]), ~(a | b | c));
}

TEST(BenchReader, MuxConvention) {
  // MUX(s, a, b): s ? b : a.
  const net::Network network = read_bench_string(
      "INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = MUX(s, a, b)\n");
  sim::Simulator sim(network);
  const sim::PatternWord s = 0xaaaaaaaaaaaaaaaaull;
  const sim::PatternWord a = 0xccccccccccccccccull;
  const sim::PatternWord b = 0xf0f0f0f0f0f0f0f0ull;
  sim.simulate_word(std::vector<sim::PatternWord>{s, a, b});
  EXPECT_EQ(sim.value(network.pos()[0]), (s & b) | (~s & a));
}

TEST(BenchReader, OutOfOrderDefinitions) {
  const net::Network network = read_bench_string(
      "INPUT(a)\nOUTPUT(f)\nf = NOT(t)\nt = BUFF(a)\n");
  EXPECT_EQ(network.num_luts(), 2u);
}

TEST(BenchReader, CaseInsensitiveGateNames) {
  const net::Network network = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = and(a, b)\n");
  EXPECT_EQ(network.num_luts(), 1u);
}

TEST(BenchReader, Errors) {
  // DFF rejected.
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"),
      std::runtime_error);
  // Unknown gate.
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(f)\nf = FROB(a)\n"),
      std::runtime_error);
  // Arity violation.
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = NOT(a, b)\n"),
      std::runtime_error);
  // Undefined signal.
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(f)\n"), std::runtime_error);
  // Cycle.
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(f)\nf = NOT(g)\ng = NOT(f)\n"),
               std::runtime_error);
  // Double definition.
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(f)\nf = NOT(a)\nf = BUFF(a)\n"),
               std::runtime_error);
}

TEST(BenchWriter, RoundTripSample) {
  const net::Network original = read_bench_string(kSample);
  const net::Network reparsed = read_bench_string(write_bench_string(original));
  expect_same_function(original, reparsed);
}

TEST(BenchWriter, RoundTripGeneralLuts) {
  // Generated 6-LUT networks force the ISOP decomposition path.
  benchgen::CircuitSpec spec;
  spec.name = "bench_roundtrip";
  spec.num_gates = 300;
  const net::Network original = benchgen::generate_mapped(spec);
  const net::Network reparsed = read_bench_string(write_bench_string(original));
  expect_same_function(original, reparsed, 8);
}

}  // namespace
}  // namespace simgen::io

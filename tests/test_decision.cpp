// Decision-policy tests: Equation 1 (DC count), Equation 3 (MFFC rank),
// Equation 4 (combined priority), roulette selection, and conflicts.
#include "simgen/decision.hpp"

#include <gtest/gtest.h>

#include <array>

namespace simgen::core {
namespace {

// f = (a & b) | c — ON rows {--1} (2 DCs) and {11-} (1 DC); decision for
// out=1 under the DC heuristic must prefer the c-row.
struct DcFixture {
  net::Network network;
  net::NodeId a, b, c, g;

  DcFixture() {
    a = network.add_pi();
    b = network.add_pi();
    c = network.add_pi();
    const std::array<net::NodeId, 3> f{a, b, c};
    const auto table = (tt::TruthTable::projection(3, 0) &
                        tt::TruthTable::projection(3, 1)) |
                       tt::TruthTable::projection(3, 2);
    g = network.add_lut(f, table);
    network.add_po(g);
  }
};

TEST(Decision, AppliesChosenRowCompletely) {
  DcFixture fx;
  const RowDatabase rows(fx.network);
  const net::MffcDepthCache mffc(fx.network);
  util::Rng rng(1);
  NodeValues values(fx.network.num_nodes());
  values.assign(fx.g, TVal::kOne);

  const DecisionOutcome outcome =
      decide(fx.network, rows, values, fx.g, DecisionStrategy::kRandom,
             DecisionWeights{}, &mffc, rng);
  ASSERT_TRUE(outcome.made);
  EXPECT_GT(outcome.assignments, 0u);
  // Whichever row was chosen, its literals are now assigned and the
  // assignment is consistent with out=1.
  const bool c_set = values.is_assigned(fx.c) && values.get(fx.c) == TVal::kOne;
  const bool ab_set = values.is_assigned(fx.a) && values.is_assigned(fx.b) &&
                      values.get(fx.a) == TVal::kOne &&
                      values.get(fx.b) == TVal::kOne;
  EXPECT_TRUE(c_set || ab_set);
}

TEST(Decision, NoMatchingRowReportsConflict) {
  DcFixture fx;
  const RowDatabase rows(fx.network);
  const net::MffcDepthCache mffc(fx.network);
  util::Rng rng(2);
  NodeValues values(fx.network.num_nodes());
  values.assign(fx.g, TVal::kOne);
  values.assign(fx.a, TVal::kZero);
  values.assign(fx.c, TVal::kZero);  // (0 & b) | 0 can never be 1
  const DecisionOutcome outcome =
      decide(fx.network, rows, values, fx.g, DecisionStrategy::kRandom,
             DecisionWeights{}, &mffc, rng);
  EXPECT_FALSE(outcome.made);
}

TEST(Decision, DcHeuristicPrefersRowsWithMoreDontCares) {
  DcFixture fx;
  const RowDatabase rows(fx.network);
  const net::MffcDepthCache mffc(fx.network);
  util::Rng rng(3);

  int picked_c = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    NodeValues values(fx.network.num_nodes());
    values.assign(fx.g, TVal::kOne);
    const DecisionOutcome outcome =
        decide(fx.network, rows, values, fx.g, DecisionStrategy::kDontCare,
               DecisionWeights{}, &mffc, rng);
    ASSERT_TRUE(outcome.made);
    if (values.is_assigned(fx.c) && !values.is_assigned(fx.a)) ++picked_c;
  }
  // Roulette weights: alpha*2 vs alpha*1 -> the 2-DC row should win about
  // 2/3 of the time; demand a clear majority.
  EXPECT_GT(picked_c, trials / 2);
}

TEST(Decision, RandomPolicyIsRoughlyUniform) {
  DcFixture fx;
  const RowDatabase rows(fx.network);
  const net::MffcDepthCache mffc(fx.network);
  util::Rng rng(4);

  int picked_c = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    NodeValues values(fx.network.num_nodes());
    values.assign(fx.g, TVal::kOne);
    decide(fx.network, rows, values, fx.g, DecisionStrategy::kRandom,
           DecisionWeights{}, &mffc, rng);
    if (values.is_assigned(fx.c) && !values.is_assigned(fx.a)) ++picked_c;
  }
  EXPECT_GT(picked_c, trials / 4);
  EXPECT_LT(picked_c, 3 * trials / 4);
}

// MFFC fixture: z = and(x, y) where x has a private chain (deep MFFC) and
// y's fanins are shared (depth-0 MFFC). Equation 3 must rank the row
// constraining x above the row constraining y.
struct MffcFixture {
  net::Network network;
  net::NodeId p0, p1, x, y, z;

  MffcFixture() {
    p0 = network.add_pi();
    p1 = network.add_pi();
    const auto nott = tt::TruthTable::not_gate();
    const std::array<net::NodeId, 1> fc1{p0};
    const net::NodeId c1 = network.add_lut(fc1, nott);
    const std::array<net::NodeId, 1> fc2{c1};
    const net::NodeId c2 = network.add_lut(fc2, nott);
    const std::array<net::NodeId, 1> fx{c2};
    x = network.add_lut(fx, nott);  // private chain -> deep MFFC
    const std::array<net::NodeId, 2> fy{p0, p1};
    y = network.add_lut(fy, tt::TruthTable::and_gate(2));
    const std::array<net::NodeId, 2> fz{x, y};
    z = network.add_lut(fz, tt::TruthTable::and_gate(2));
    network.add_po(z);
    // Share y's structure into another PO so its MFFC stays shallow.
    const std::array<net::NodeId, 2> fshare{y, p1};
    network.add_po(network.add_lut(fshare, tt::TruthTable::or_gate(2)));
  }
};

TEST(Decision, MffcRankFollowsEquation3) {
  MffcFixture fx;
  const net::MffcDepthCache mffc(fx.network);
  // Row constraining only input 0 (x).
  Row row_x;
  row_x.cube.set_literal(0, false);
  row_x.output = false;
  // Row constraining only input 1 (y).
  Row row_y;
  row_y.cube.set_literal(1, false);
  row_y.output = false;

  const double rank_x = mffc_rank(fx.network, mffc, fx.z, row_x);
  const double rank_y = mffc_rank(fx.network, mffc, fx.z, row_y);
  EXPECT_DOUBLE_EQ(rank_x, mffc.depth(fx.x));
  EXPECT_DOUBLE_EQ(rank_y, mffc.depth(fx.y));
  EXPECT_GT(rank_x, rank_y);  // deep MFFC -> higher rank -> constrain it

  // Equation 4: with equal DC counts the beta term decides.
  const DecisionWeights weights{100.0, 1.0};
  const double prio_x = row_priority(fx.network, &mffc, fx.z, row_x,
                                     DecisionStrategy::kDontCareMffc, weights);
  const double prio_y = row_priority(fx.network, &mffc, fx.z, row_y,
                                     DecisionStrategy::kDontCareMffc, weights);
  EXPECT_GT(prio_x, prio_y);
}

TEST(Decision, MffcHeuristicPrefersConstrainingDeepCones) {
  MffcFixture fx;
  const RowDatabase rows(fx.network);
  const net::MffcDepthCache mffc(fx.network);
  // Bias the weights so the MFFC term dominates (isolates the effect).
  const DecisionWeights weights{0.0, 1.0};
  util::Rng rng(5);

  int constrained_x = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    NodeValues values(fx.network.num_nodes());
    values.assign(fx.z, TVal::kZero);
    const DecisionOutcome outcome =
        decide(fx.network, rows, values, fx.z, DecisionStrategy::kDontCareMffc,
               weights, &mffc, rng);
    ASSERT_TRUE(outcome.made);
    // and(x,y)=0 rows: {x=0, y DC} or {y=0, x DC}.
    if (values.is_assigned(fx.x) && !values.is_assigned(fx.y)) ++constrained_x;
  }
  EXPECT_GT(constrained_x, trials / 2);
}

TEST(Decision, AlphaDominatesBetaInEquation4) {
  // A row with an extra DC must outrank any realistic MFFC contribution
  // when alpha >> beta (the paper's requirement).
  DcFixture fx;
  const net::MffcDepthCache mffc(fx.network);
  Row two_dc;  // {--1}
  two_dc.cube.set_literal(2, true);
  two_dc.output = true;
  Row one_dc;  // {11-}
  one_dc.cube.set_literal(0, true);
  one_dc.cube.set_literal(1, true);
  one_dc.output = true;
  const DecisionWeights weights{100.0, 1.0};
  EXPECT_GT(row_priority(fx.network, &mffc, fx.g, two_dc,
                         DecisionStrategy::kDontCareMffc, weights),
            row_priority(fx.network, &mffc, fx.g, one_dc,
                         DecisionStrategy::kDontCareMffc, weights));
}

}  // namespace
}  // namespace simgen::core

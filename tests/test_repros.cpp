/// \file test_repros.cpp
/// \brief Regression suite over committed fuzz repro artifacts.
///
/// Every bug the fuzz campaign finds lands here as a shrunken,
/// self-contained .blif under tests/repros/ (see the artifact's comment
/// header for provenance). This test replays each artifact through the
/// full oracle set — all six strategy arms, the certified plain SAT
/// miter, the BDD engine, and the serializer round trips — and demands
/// that every oracle passes: a regression re-opens the original
/// disagreement and fails the corresponding oracle.
///
/// Current artifacts:
///  * bench_const_undefined.blif — the BENCH writer referenced canonical
///    constant nodes it never defined ("bench: undefined signal");
///    fixed by the CONST0()/CONST1() zero-operand gate extension.
///  * drat_clause_permutation.blif — the DRAT checker's RUP propagation
///    permutes stored clauses in place, and clause deletion failed to
///    recognize permuted clauses (order-dependent hash + exact vector
///    compare), flagging sound proofs as corrupt on any instance big
///    enough to trigger learnt-clause reduction.
///  * witness_stale_lanes.blif — counterexample resimulation drew its
///    witness fill bits from shared sweeper state (so witness bytes
///    depended on what was disproven earlier) and the batched wide
///    resimulation staging could carry stale pattern lanes between
///    batches; four random-resistant near-miss pairs force back-to-back
///    SAT disproofs with an UNSAT merge in between, and the replay's
///    width-sweep leg demands byte-identical results at every kernel and
///    block width.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/oracle.hpp"
#include "io/blif.hpp"

namespace simgen::fuzz {
namespace {

#ifndef SIMGEN_REPRO_DIR
#error "SIMGEN_REPRO_DIR must point at tests/repros"
#endif

std::vector<std::filesystem::path> repro_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(SIMGEN_REPRO_DIR)) {
    if (entry.path().extension() == ".blif") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Seed recorded in the artifact's "# seed: N" header line (1 if absent).
std::uint64_t artifact_seed(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# seed: ", 0) == 0)
      return std::stoull(line.substr(8));
    if (!line.empty() && line[0] != '#') break;
  }
  return 1;
}

TEST(Repros, DirectoryIsNotEmpty) { EXPECT_FALSE(repro_files().empty()); }

TEST(Repros, EveryArtifactPassesAllOracles) {
  for (const std::filesystem::path& path : repro_files()) {
    SCOPED_TRACE(path.filename().string());
    const net::Network network = io::read_blif_file(path.string());
    const std::vector<OracleResult> results =
        replay_network(network, artifact_seed(path));
    EXPECT_FALSE(results.empty());
    for (const OracleResult& result : results)
      EXPECT_TRUE(result.pass)
          << path.filename().string() << ": " << result.name
          << " regressed: " << result.detail;
  }
}

}  // namespace
}  // namespace simgen::fuzz

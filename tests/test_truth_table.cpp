// Unit and property tests for tt::TruthTable, including parameterized
// sweeps over all supported arities (the small-word and multi-word code
// paths split at 6 variables).
#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace simgen::tt {
namespace {

TruthTable random_table(unsigned num_vars, util::Rng& rng) {
  TruthTable table(num_vars);
  for (std::uint64_t m = 0; m < table.num_bits(); ++m)
    table.set_bit(m, rng.flip());
  return table;
}

TEST(TruthTable, ConstantsAndBits) {
  const auto zero = TruthTable::constant(3, false);
  const auto one = TruthTable::constant(3, true);
  EXPECT_TRUE(zero.is_const0());
  EXPECT_TRUE(one.is_const1());
  EXPECT_EQ(zero.count_ones(), 0u);
  EXPECT_EQ(one.count_ones(), 8u);
  for (unsigned m = 0; m < 8; ++m) {
    EXPECT_FALSE(zero.get_bit(m));
    EXPECT_TRUE(one.get_bit(m));
  }
}

TEST(TruthTable, ProjectionSemantics) {
  for (unsigned n = 1; n <= 8; ++n) {
    for (unsigned v = 0; v < n; ++v) {
      const auto proj = TruthTable::projection(n, v);
      for (std::uint64_t m = 0; m < proj.num_bits(); ++m)
        EXPECT_EQ(proj.get_bit(m), ((m >> v) & 1u) != 0) << "n=" << n << " v=" << v;
    }
  }
}

TEST(TruthTable, ProjectionOutOfRangeThrows) {
  EXPECT_THROW(TruthTable::projection(3, 3), std::invalid_argument);
}

TEST(TruthTable, TooManyVarsThrows) {
  EXPECT_THROW(TruthTable(17), std::invalid_argument);
}

TEST(TruthTable, GateFunctions) {
  const auto and2 = TruthTable::and_gate(2);
  EXPECT_EQ(and2.to_binary(), "1000");
  const auto or2 = TruthTable::or_gate(2);
  EXPECT_EQ(or2.to_binary(), "1110");
  const auto xor2 = TruthTable::xor_gate(2);
  EXPECT_EQ(xor2.to_binary(), "0110");
  const auto nand2 = TruthTable::nand_gate(2);
  EXPECT_EQ(nand2.to_binary(), "0111");
  const auto nor2 = TruthTable::nor_gate(2);
  EXPECT_EQ(nor2.to_binary(), "0001");
  EXPECT_EQ(TruthTable::not_gate().to_binary(), "01");
  EXPECT_EQ(TruthTable::buffer().to_binary(), "10");
}

TEST(TruthTable, Majority3) {
  const auto maj = TruthTable::majority3();
  for (unsigned m = 0; m < 8; ++m) {
    const int ones = ((m >> 0) & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(maj.get_bit(m), ones >= 2);
  }
}

TEST(TruthTable, Mux3SelectsBySelector) {
  const auto mux = TruthTable::mux3();  // s=var2: s ? b(var1) : a(var0)
  for (unsigned m = 0; m < 8; ++m) {
    const bool a = (m >> 0) & 1, b = (m >> 1) & 1, s = (m >> 2) & 1;
    EXPECT_EQ(mux.get_bit(m), s ? b : a);
  }
}

TEST(TruthTable, BinaryRoundTrip) {
  const auto table = TruthTable::from_binary("10010110");
  EXPECT_EQ(table.num_vars(), 3u);
  EXPECT_EQ(table.to_binary(), "10010110");
}

TEST(TruthTable, FromBinaryRejectsBadInput) {
  EXPECT_THROW(TruthTable::from_binary("101"), std::invalid_argument);
  EXPECT_THROW(TruthTable::from_binary("10x0"), std::invalid_argument);
}

TEST(TruthTable, HexRoundTrip) {
  const auto table = TruthTable::from_hex(4, "8a2f");
  EXPECT_EQ(table.to_hex(), "8a2f");
  EXPECT_THROW(TruthTable::from_hex(4, "8a2"), std::invalid_argument);
  EXPECT_THROW(TruthTable::from_hex(4, "8a2g"), std::invalid_argument);
}

TEST(TruthTable, HexAndGate) {
  EXPECT_EQ(TruthTable::and_gate(2).to_hex(), "8");
  EXPECT_EQ(TruthTable::and_gate(3).to_hex(), "80");
}

TEST(TruthTable, DependsOnAndSupport) {
  const auto and2in4 =
      TruthTable::projection(4, 0) & TruthTable::projection(4, 2);
  EXPECT_TRUE(and2in4.depends_on(0));
  EXPECT_FALSE(and2in4.depends_on(1));
  EXPECT_TRUE(and2in4.depends_on(2));
  EXPECT_FALSE(and2in4.depends_on(3));
  EXPECT_EQ(and2in4.support_mask(), 0b0101u);
  EXPECT_EQ(and2in4.support_size(), 2u);
}

TEST(TruthTable, CofactorIdentity) {
  // Shannon: f == (x & f1) | (!x & f0) for every variable.
  util::Rng rng(99);
  for (unsigned n = 1; n <= 8; ++n) {
    const auto f = random_table(n, rng);
    for (unsigned v = 0; v < n; ++v) {
      const auto f0 = f.cofactor0(v);
      const auto f1 = f.cofactor1(v);
      EXPECT_FALSE(f0.depends_on(v));
      EXPECT_FALSE(f1.depends_on(v));
      const auto x = TruthTable::projection(n, v);
      EXPECT_EQ((x & f1) | (~x & f0), f) << "n=" << n << " v=" << v;
    }
  }
}

TEST(TruthTable, BooleanAlgebraLaws) {
  util::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const auto a = random_table(5, rng);
    const auto b = random_table(5, rng);
    EXPECT_EQ(~~a, a);
    EXPECT_EQ(a & b, b & a);
    EXPECT_EQ(a | b, b | a);
    EXPECT_EQ(a ^ b, (a & ~b) | (~a & b));
    EXPECT_EQ(~(a & b), ~a | ~b);  // De Morgan
    EXPECT_EQ(a & (a | b), a);     // absorption
  }
}

TEST(TruthTable, ArityMismatchThrows) {
  const auto a = TruthTable::constant(2, true);
  const auto b = TruthTable::constant(3, true);
  EXPECT_THROW((void)(a & b), std::invalid_argument);
}

TEST(TruthTable, Implies) {
  const auto and2 = TruthTable::and_gate(2);
  const auto or2 = TruthTable::or_gate(2);
  EXPECT_TRUE(and2.implies(or2));
  EXPECT_FALSE(or2.implies(and2));
  EXPECT_TRUE(and2.implies(and2));
}

TEST(TruthTable, ExtendedToPreservesFunction) {
  util::Rng rng(31);
  const auto f = random_table(3, rng);
  const auto g = f.extended_to(7);
  EXPECT_EQ(g.num_vars(), 7u);
  for (std::uint64_t m = 0; m < g.num_bits(); ++m)
    EXPECT_EQ(g.get_bit(m), f.get_bit(m & 7u));
  EXPECT_THROW(g.extended_to(3), std::invalid_argument);
}

TEST(TruthTable, HashDistinguishes) {
  const auto a = TruthTable::and_gate(2);
  const auto b = TruthTable::or_gate(2);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), TruthTable::and_gate(2).hash());
  // Same bits, different arity: distinct hash.
  const auto c1 = TruthTable::constant(2, false);
  const auto c2 = TruthTable::constant(3, false);
  EXPECT_NE(c1.hash(), c2.hash());
}

// Parameterized sweep: word-boundary behaviour must be identical across
// arities (1 word <= 6 vars, multiple words above).
class TruthTableArity : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruthTableArity, CountOnesMatchesEnumeration) {
  const unsigned n = GetParam();
  util::Rng rng(1000 + n);
  const auto f = random_table(n, rng);
  std::uint64_t expected = 0;
  for (std::uint64_t m = 0; m < f.num_bits(); ++m)
    if (f.get_bit(m)) ++expected;
  EXPECT_EQ(f.count_ones(), expected);
}

TEST_P(TruthTableArity, NegationFlipsEveryBit) {
  const unsigned n = GetParam();
  util::Rng rng(2000 + n);
  const auto f = random_table(n, rng);
  const auto g = ~f;
  for (std::uint64_t m = 0; m < f.num_bits(); ++m)
    EXPECT_NE(f.get_bit(m), g.get_bit(m));
  EXPECT_EQ(f.count_ones() + g.count_ones(), f.num_bits());
}

TEST_P(TruthTableArity, HexRoundTripIsExact) {
  const unsigned n = GetParam();
  util::Rng rng(3000 + n);
  const auto f = random_table(n, rng);
  EXPECT_EQ(TruthTable::from_hex(n, f.to_hex()), f);
}

TEST_P(TruthTableArity, XorWithSelfIsZero) {
  const unsigned n = GetParam();
  util::Rng rng(4000 + n);
  const auto f = random_table(n, rng);
  EXPECT_TRUE((f ^ f).is_const0());
}

INSTANTIATE_TEST_SUITE_P(AllArities, TruthTableArity,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u, 12u));

}  // namespace
}  // namespace simgen::tt

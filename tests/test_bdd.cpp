// BDD package tests: canonicity, Boolean laws, counting, network
// construction cross-checked against simulation, BDD-based CEC, and the
// classical multiplier blow-up that motivated SAT-based sweeping.
#include "bdd/network_bdd.hpp"

#include <gtest/gtest.h>

#include "benchgen/arith.hpp"
#include "benchgen/generator.hpp"
#include "mapping/lut_mapper.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::bdd {
namespace {

TEST(Bdd, ConstantsAndVariables) {
  BddManager manager(3);
  EXPECT_EQ(manager.constant(false), kFalse);
  EXPECT_EQ(manager.constant(true), kTrue);
  const NodeRef x = manager.variable(0);
  EXPECT_EQ(x, manager.variable(0));  // cached
  EXPECT_TRUE(manager.evaluate(x, 0b001));
  EXPECT_FALSE(manager.evaluate(x, 0b110));
  EXPECT_THROW((void)manager.variable(3), std::invalid_argument);
}

TEST(Bdd, CanonicityMakesEqualityStructural) {
  BddManager manager(3);
  const NodeRef a = manager.variable(0);
  const NodeRef b = manager.variable(1);
  const NodeRef c = manager.variable(2);
  // (a & b) | c == (c | b) & (c | a) -- distributivity.
  const NodeRef left = manager.apply_or(manager.apply_and(a, b), c);
  const NodeRef right =
      manager.apply_and(manager.apply_or(c, b), manager.apply_or(c, a));
  EXPECT_EQ(left, right);
  // De Morgan.
  EXPECT_EQ(manager.apply_not(manager.apply_and(a, b)),
            manager.apply_or(manager.apply_not(a), manager.apply_not(b)));
  // Double negation.
  EXPECT_EQ(manager.apply_not(manager.apply_not(left)), left);
  // x ^ x == 0.
  EXPECT_EQ(manager.apply_xor(left, left), kFalse);
}

TEST(Bdd, IteTruthTableCrossCheck) {
  // Every 3-input function via ite of projections must match evaluation.
  BddManager manager(3);
  const NodeRef f = manager.variable(0);
  const NodeRef g = manager.variable(1);
  const NodeRef h = manager.variable(2);
  const NodeRef ite_ref = manager.ite(f, g, h);
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool expect = (m & 1) ? ((m >> 1) & 1) : ((m >> 2) & 1);
    EXPECT_EQ(manager.evaluate(ite_ref, m), expect) << m;
  }
}

TEST(Bdd, SatCount) {
  BddManager manager(4);
  const NodeRef a = manager.variable(0);
  const NodeRef b = manager.variable(1);
  EXPECT_DOUBLE_EQ(manager.sat_count(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(manager.sat_count(kTrue), 16.0);
  EXPECT_DOUBLE_EQ(manager.sat_count(a), 8.0);
  EXPECT_DOUBLE_EQ(manager.sat_count(manager.apply_and(a, b)), 4.0);
  EXPECT_DOUBLE_EQ(manager.sat_count(manager.apply_xor(a, b)), 8.0);
}

TEST(Bdd, OneSatIsSatisfying) {
  BddManager manager(6);
  util::Rng rng(3);
  // Random function built from projections.
  NodeRef f = manager.variable(0);
  for (unsigned v = 1; v < 6; ++v) {
    const NodeRef x = manager.variable(v);
    switch (rng.below(3)) {
      case 0: f = manager.apply_and(f, x); break;
      case 1: f = manager.apply_or(f, x); break;
      default: f = manager.apply_xor(f, x); break;
    }
  }
  ASSERT_NE(f, kFalse);
  EXPECT_TRUE(manager.evaluate(f, manager.one_sat(f)));
  EXPECT_THROW((void)manager.one_sat(kFalse), std::invalid_argument);
}

TEST(Bdd, DagSizeCountsSharedNodesOnce) {
  BddManager manager(2);
  const NodeRef a = manager.variable(0);
  const NodeRef b = manager.variable(1);
  EXPECT_EQ(manager.dag_size(kTrue), 0u);
  EXPECT_EQ(manager.dag_size(a), 1u);
  EXPECT_EQ(manager.dag_size(manager.apply_xor(a, b)), 3u);  // a-node + 2 b-nodes
}

TEST(Bdd, NodeLimitThrows) {
  BddManager manager(16, /*node_limit=*/8);
  NodeRef f = manager.variable(0);
  EXPECT_THROW(
      {
        for (unsigned v = 1; v < 16; ++v)
          f = manager.apply_xor(f, manager.variable(v));
      },
      BddLimitExceeded);
}

TEST(NetworkBdd, MatchesSimulationOnGeneratedCircuit) {
  benchgen::CircuitSpec spec;
  spec.name = "bdd_net";
  spec.num_pis = 10;
  spec.num_pos = 5;
  spec.num_gates = 150;
  const net::Network network = benchgen::generate_mapped(spec);
  BddManager manager(static_cast<unsigned>(network.num_pis()));
  NetworkBdds bdds(manager, network);

  sim::Simulator simulator(network);
  for (std::uint64_t round = 0; round < 4; ++round) {
    simulator.simulate_random_word(17, round);
    for (const net::NodeId po : network.pos()) {
      const NodeRef f = bdds.build(po);
      for (unsigned pattern = 0; pattern < 64; pattern += 7) {
        std::uint64_t input_bits = 0;
        for (std::size_t i = 0; i < network.num_pis(); ++i)
          if (simulator.value_bit(network.pis()[i], pattern))
            input_bits |= std::uint64_t{1} << i;
        ASSERT_EQ(manager.evaluate(f, input_bits),
                  simulator.value_bit(po, pattern));
      }
    }
  }
}

TEST(NetworkBdd, CecAgreesOnEquivalentAdders) {
  const net::Network rca =
      mapping::map_to_luts(benchgen::build_ripple_carry_adder(8));
  const net::Network csa =
      mapping::map_to_luts(benchgen::build_carry_select_adder(8, 3));
  const BddCecResult result = bdd_check_equivalence(rca, csa);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.equivalent);
  EXPECT_GT(result.peak_nodes, 0u);
}

TEST(NetworkBdd, CecFindsValidCounterexample) {
  const net::Network good =
      mapping::map_to_luts(benchgen::build_comparator(6));
  // Break one output: swap lt and gt drivers.
  net::Network bad("cmp_bad");
  std::vector<net::NodeId> map(good.num_nodes());
  good.for_each_node([&](net::NodeId id) {
    const auto& node = good.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi: map[id] = bad.add_pi(node.name); break;
      case net::NodeKind::kConstant:
        map[id] = bad.add_constant(node.constant_value);
        break;
      case net::NodeKind::kPo: break;  // re-added below, reordered
      case net::NodeKind::kLut: {
        std::vector<net::NodeId> fanins;
        for (const net::NodeId fanin : node.fanins) fanins.push_back(map[fanin]);
        map[id] = bad.add_lut(fanins, node.function);
        break;
      }
    }
  });
  // POs: gt, eq, lt (swapped ends).
  bad.add_po(map[good.fanins(good.pos()[2])[0]]);
  bad.add_po(map[good.fanins(good.pos()[1])[0]]);
  bad.add_po(map[good.fanins(good.pos()[0])[0]]);

  const BddCecResult result = bdd_check_equivalence(good, bad);
  ASSERT_TRUE(result.completed);
  ASSERT_FALSE(result.equivalent);
  // Verify the witness by simulation.
  sim::Simulator sim_a(good), sim_b(bad);
  std::vector<sim::PatternWord> words(good.num_pis(), 0);
  for (std::size_t i = 0; i < good.num_pis(); ++i)
    if (result.counterexample[i]) words[i] = 1;
  sim_a.simulate_word(words);
  sim_b.simulate_word(words);
  bool differs = false;
  for (std::size_t i = 0; i < good.num_pos(); ++i)
    differs |= (sim_a.value(good.pos()[i]) ^ sim_b.value(bad.pos()[i])) & 1u;
  EXPECT_TRUE(differs);
}

TEST(NetworkBdd, PairCheckMatchesExhaustiveTruth) {
  benchgen::CircuitSpec spec;
  spec.name = "bdd_pair";
  spec.num_pis = 8;
  spec.num_pos = 4;
  spec.num_gates = 80;
  spec.redundancy = 0.15;
  const net::Network network = benchgen::generate_mapped(spec);
  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });

  sim::Simulator simulator(network);
  util::Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    const net::NodeId x = luts[rng.below(luts.size())];
    const net::NodeId y = luts[rng.below(luts.size())];
    // Exhaustive ground truth over 2^8 patterns.
    bool equal = true;
    for (std::size_t base = 0; base < 256 && equal; base += 64) {
      std::vector<sim::PatternWord> words(network.num_pis(), 0);
      for (std::size_t bit = 0; bit < 64; ++bit)
        for (std::size_t i = 0; i < network.num_pis(); ++i)
          if (((base + bit) >> i) & 1) words[i] |= sim::PatternWord{1} << bit;
      simulator.simulate_word(words);
      equal = simulator.value(x) == simulator.value(y);
    }
    const auto verdict = bdd_check_pair(network, x, y);
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(*verdict, equal) << "pair " << x << "," << y;
  }
}

TEST(NetworkBdd, MultiplierBlowsUpWhereSatDoesNot) {
  // The paper's Section 2.2 motivation, measured: multiplier output BDDs
  // are exponential; a tight node limit must trip, while the same check
  // via SAT sweeping completes instantly elsewhere in the suite tests.
  const net::Network mul =
      mapping::map_to_luts(benchgen::build_array_multiplier(12));
  const BddCecResult result =
      bdd_check_equivalence(mul, mul, /*node_limit=*/1u << 14);
  // Identity pair: shared NetworkBdds are separate managers builds — the
  // middle product bits alone exceed 16k nodes at width 12.
  EXPECT_FALSE(result.completed);

  // Adders, by contrast, stay small: a modest limit suffices even though
  // the manager keeps all intermediate ITE results (no garbage
  // collection), while the multiplier blows through far larger budgets.
  const net::Network add =
      mapping::map_to_luts(benchgen::build_ripple_carry_adder(12));
  const BddCecResult small = bdd_check_equivalence(add, add, 1u << 18);
  EXPECT_TRUE(small.completed);
  EXPECT_TRUE(small.equivalent);
  EXPECT_LT(small.peak_nodes, 1u << 18);
  const BddCecResult mul_large =
      bdd_check_equivalence(mul, mul, /*node_limit=*/1u << 18);
  EXPECT_FALSE(mul_large.completed);
}

}  // namespace
}  // namespace simgen::bdd

namespace simgen::bdd {
namespace {

TEST(NetworkBdd, VariableOrderIsDecisiveForAdders) {
  // Block order blows up the 16-bit adder; the interleaved order keeps it
  // tiny — same circuit, same limit.
  const net::Network rca =
      mapping::map_to_luts(benchgen::build_ripple_carry_adder(16));
  const std::size_t limit = 1u << 17;
  const BddCecResult block = bdd_check_equivalence(rca, rca, limit);
  const auto order = interleaved_order(rca.num_pis(), 16);
  const BddCecResult inter = bdd_check_equivalence(rca, rca, limit, order);
  EXPECT_FALSE(block.completed);
  ASSERT_TRUE(inter.completed);
  EXPECT_TRUE(inter.equivalent);
  EXPECT_LT(inter.peak_nodes, limit / 4);
}

TEST(NetworkBdd, InterleavedOrderIsAPermutation) {
  for (const unsigned width : {1u, 4u, 9u}) {
    const std::size_t num_pis = 2 * width + 1;
    const auto order = interleaved_order(num_pis, width);
    std::vector<bool> hit(num_pis, false);
    for (const unsigned v : order) {
      ASSERT_LT(v, num_pis);
      ASSERT_FALSE(hit[v]);
      hit[v] = true;
    }
  }
}

TEST(NetworkBdd, OrderDoesNotChangeVerdicts) {
  // Different orders must agree on equivalence (canonicity per order).
  const net::Network a =
      mapping::map_to_luts(benchgen::build_comparator(5));
  const net::Network b =
      mapping::map_to_luts(benchgen::build_comparator(5));
  const auto order = interleaved_order(a.num_pis(), 5);
  const BddCecResult block = bdd_check_equivalence(a, b);
  const BddCecResult inter = bdd_check_equivalence(a, b, 1u << 22, order);
  ASSERT_TRUE(block.completed);
  ASSERT_TRUE(inter.completed);
  EXPECT_EQ(block.equivalent, inter.equivalent);
}

}  // namespace
}  // namespace simgen::bdd

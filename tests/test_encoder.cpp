// CNF encoder tests. Core property: for any complete PI assignment, the
// CNF forces every encoded node's variable to the simulated value —
// checked by solving under PI assumptions with the node var pinned to the
// correct (SAT expected) and flipped (UNSAT expected) value.
#include "sat/encoder.hpp"

#include <gtest/gtest.h>

#include <array>

#include "benchgen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::sat {
namespace {

TEST(Encoder, LazyEncodingOnlyTouchesCone) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const net::NodeId c = network.add_pi();
  const std::array<net::NodeId, 2> f1{a, b};
  const net::NodeId g1 = network.add_lut(f1, tt::TruthTable::and_gate(2));
  const std::array<net::NodeId, 2> f2{b, c};
  const net::NodeId g2 = network.add_lut(f2, tt::TruthTable::or_gate(2));
  network.add_po(g1);
  network.add_po(g2);

  Solver solver;
  CnfEncoder encoder(network, solver);
  encoder.ensure_encoded(g1);
  EXPECT_TRUE(encoder.is_encoded(a));
  EXPECT_TRUE(encoder.is_encoded(b));
  EXPECT_TRUE(encoder.is_encoded(g1));
  EXPECT_FALSE(encoder.is_encoded(c));
  EXPECT_FALSE(encoder.is_encoded(g2));
  // Encoding is idempotent.
  const Var var = encoder.var_of(g1);
  EXPECT_EQ(encoder.ensure_encoded(g1), var);
}

TEST(Encoder, PoSharesDriverVariable) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId po = network.add_po(a);
  Solver solver;
  CnfEncoder encoder(network, solver);
  const Var po_var = encoder.ensure_encoded(po);
  EXPECT_EQ(po_var, encoder.var_of(a));
}

TEST(Encoder, ConstantNodesArePinned) {
  net::Network network;
  const net::NodeId c1 = network.add_constant(true);
  const net::NodeId c0 = network.add_constant(false);
  Solver solver;
  CnfEncoder encoder(network, solver);
  const Var v1 = encoder.ensure_encoded(c1);
  const Var v0 = encoder.ensure_encoded(c0);
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_TRUE(solver.model_value(v1));
  EXPECT_FALSE(solver.model_value(v0));
  EXPECT_EQ(solver.solve({neg(v1)}), Result::kUnsat);
  EXPECT_EQ(solver.solve({pos(v0)}), Result::kUnsat);
}

// The central soundness/completeness property of the Tseitin encoding.
class EncoderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncoderProperty, EncodingMatchesSimulation) {
  benchgen::CircuitSpec spec;
  spec.name = "encoder_prop_" + std::to_string(GetParam());
  spec.num_pis = 8;
  spec.num_pos = 4;
  spec.num_gates = 60;
  const net::Network network = benchgen::generate_mapped(spec);

  Solver solver;
  CnfEncoder encoder(network, solver);
  for (const net::NodeId po : network.pos()) encoder.ensure_encoded(po);

  sim::Simulator simulator(network);
  util::Rng rng(GetParam() * 7919 + 1);
  std::vector<sim::PatternWord> words(network.num_pis());
  for (auto& w : words) w = rng();
  simulator.simulate_word(words);

  for (unsigned pattern = 0; pattern < 8; ++pattern) {
    std::vector<Lit> assumptions;
    for (std::size_t i = 0; i < network.num_pis(); ++i) {
      const net::NodeId pi = network.pis()[i];
      if (!encoder.is_encoded(pi)) continue;
      assumptions.push_back(
          Lit(encoder.var_of(pi), !simulator.value_bit(pi, pattern)));
    }
    // With PIs fixed, the whole circuit is determined: SAT, and every
    // encoded node variable equals its simulated value.
    ASSERT_EQ(solver.solve(assumptions), Result::kSat);
    network.for_each_lut([&](net::NodeId node) {
      if (!encoder.is_encoded(node)) return;
      EXPECT_EQ(solver.model_value(encoder.var_of(node)),
                simulator.value_bit(node, pattern));
    });
    // Pinning one LUT output to the wrong value must be UNSAT.
    net::NodeId probe = net::kNullNode;
    network.for_each_lut([&](net::NodeId node) {
      if (encoder.is_encoded(node)) probe = node;
    });
    ASSERT_NE(probe, net::kNullNode);
    auto flipped = assumptions;
    flipped.push_back(
        Lit(encoder.var_of(probe), simulator.value_bit(probe, pattern)));
    EXPECT_EQ(solver.solve(flipped), Result::kUnsat);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderProperty, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Encoder, ModelInputVectorUsesFill) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  network.add_pi();  // never encoded
  network.add_po(a);
  Solver solver;
  CnfEncoder encoder(network, solver);
  encoder.ensure_encoded(a);
  solver.add_clause({pos(encoder.var_of(a))});
  ASSERT_EQ(solver.solve(), Result::kSat);
  const auto vec_false = encoder.model_input_vector(false);
  EXPECT_TRUE(vec_false[0]);
  EXPECT_FALSE(vec_false[1]);
  const auto vec_true = encoder.model_input_vector(true);
  EXPECT_TRUE(vec_true[1]);
}

}  // namespace
}  // namespace simgen::sat

// Tests for MFFC computation, including the worked example of the paper's
// Figure 4c (left MFFC depth 0, right MFFC depth 1).
#include "network/mffc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

namespace simgen::net {
namespace {

const tt::TruthTable kAnd2 = tt::TruthTable::and_gate(2);

bool contains(const std::vector<NodeId>& set, NodeId node) {
  return std::find(set.begin(), set.end(), node) != set.end();
}

TEST(Mffc, SingleNodeWithSharedFanins) {
  // g's fanins are PIs -> MFFC is just {g}, leaf = g, depth 0.
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const std::array<NodeId, 2> f{a, b};
  const NodeId g = network.add_lut(f, kAnd2);
  network.add_po(g);

  const MffcInfo info = compute_mffc(network, g);
  EXPECT_EQ(info.members, std::vector<NodeId>{g});
  EXPECT_EQ(info.leaves, std::vector<NodeId>{g});
  EXPECT_DOUBLE_EQ(info.depth, 0.0);
}

TEST(Mffc, ChainIsFullyContained) {
  // a -> g1 -> g2 -> g3 -> po: MFFC(g3) = {g1,g2,g3}.
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const auto nots = tt::TruthTable::not_gate();
  const std::array<NodeId, 2> f1{a, b};
  const NodeId g1 = network.add_lut(f1, kAnd2);
  const std::array<NodeId, 1> f2{g1};
  const NodeId g2 = network.add_lut(f2, nots);
  const std::array<NodeId, 1> f3{g2};
  const NodeId g3 = network.add_lut(f3, nots);
  network.add_po(g3);

  const MffcInfo info = compute_mffc(network, g3);
  EXPECT_EQ(info.members.size(), 3u);
  EXPECT_TRUE(contains(info.members, g1));
  EXPECT_TRUE(contains(info.members, g2));
  EXPECT_TRUE(contains(info.members, g3));
  EXPECT_EQ(info.leaves, std::vector<NodeId>{g1});
  // level(g3)=3, level(g1)=1 -> depth 2.
  EXPECT_DOUBLE_EQ(info.depth, 2.0);
}

TEST(Mffc, SharedNodeExcluded) {
  // g1 feeds both g2 and g3 (different PO cones): g1 is in neither MFFC.
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const std::array<NodeId, 2> f1{a, b};
  const NodeId g1 = network.add_lut(f1, kAnd2);
  const std::array<NodeId, 2> f2{g1, a};
  const NodeId g2 = network.add_lut(f2, kAnd2);
  const std::array<NodeId, 2> f3{g1, b};
  const NodeId g3 = network.add_lut(f3, kAnd2);
  network.add_po(g2);
  network.add_po(g3);

  EXPECT_FALSE(contains(compute_mffc(network, g2).members, g1));
  EXPECT_FALSE(contains(compute_mffc(network, g3).members, g1));
}

TEST(Mffc, PaperFigure4cExample) {
  // Reconstruction of Figure 4c: node z (an AND) has two fanin cones.
  // Left fanin x: a node whose own fanins are shared elsewhere -> MFFC(x)
  // = {x}, one leaf at x's level, depth 0. Right fanin y: a three-level
  // cone m (level 1), n (level 2), y (level 3) fully owned by y ->
  // leaves {m, n, y}? In the paper m, n, y have levels 1, 2, 3 and depth
  // ((3-1)+(3-2)+(3-3))/3 = 1.
  Network network;
  const NodeId p0 = network.add_pi();
  const NodeId p1 = network.add_pi();
  const NodeId p2 = network.add_pi();
  const NodeId p3 = network.add_pi();

  // Build left cone to level 3: x = and(and(and(p0,p1),p0'),...) with all
  // internal nodes shared with a second output so only x itself is in its
  // MFFC.
  const std::array<NodeId, 2> fl1{p0, p1};
  const NodeId l1 = network.add_lut(fl1, kAnd2);  // level 1
  const std::array<NodeId, 2> fl2{l1, p2};
  const NodeId l2 = network.add_lut(fl2, kAnd2);  // level 2
  const std::array<NodeId, 2> fx{l2, p3};
  const NodeId x = network.add_lut(fx, kAnd2);  // level 3

  // Right cone: m (level 1), n (level 2, reads m), y (level 3, reads n and
  // m is also shared into n only within the cone).
  const std::array<NodeId, 2> fm{p2, p3};
  const NodeId m = network.add_lut(fm, kAnd2);  // level 1
  const std::array<NodeId, 2> fn{m, p1};
  const NodeId n = network.add_lut(fn, kAnd2);  // level 2
  const std::array<NodeId, 2> fy{n, p0};
  const NodeId y = network.add_lut(fy, kAnd2);  // level 3

  const std::array<NodeId, 2> fz{x, y};
  const NodeId z = network.add_lut(fz, kAnd2);  // level 4
  network.add_po(z);
  // Share x's internal nodes into another PO cone so MFFC(x) = {x}.
  const std::array<NodeId, 2> fshare{l1, l2};
  const NodeId share = network.add_lut(fshare, kAnd2);
  network.add_po(share);

  const MffcInfo left = compute_mffc(network, x);
  EXPECT_EQ(left.members, std::vector<NodeId>{x});
  EXPECT_DOUBLE_EQ(left.depth, 0.0);

  const MffcInfo right = compute_mffc(network, y);
  EXPECT_EQ(right.members.size(), 3u);
  EXPECT_TRUE(contains(right.members, m));
  EXPECT_TRUE(contains(right.members, n));
  EXPECT_TRUE(contains(right.members, y));
  // Leaves: m is the only member without member fanins; n reads m, y reads
  // n. Depth = level(y) - level(m) = 2. (The paper's drawing counts m, n,
  // and y as leaves of parallel branches; in this linear reconstruction
  // the depth is the full chain length.)
  EXPECT_EQ(right.leaves, std::vector<NodeId>{m});
  EXPECT_DOUBLE_EQ(right.depth, 2.0);

  // The decision-relevant ordering of Figure 4c holds either way: the
  // right MFFC is strictly deeper than the left one.
  EXPECT_GT(right.depth, left.depth);
}

TEST(Mffc, BranchingConeAveragesLeafDepths) {
  // y reads two private chains of different lengths; Equation 2 averages
  // the leaf distances.
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const auto nots = tt::TruthTable::not_gate();
  const std::array<NodeId, 1> fshort{a};
  const NodeId s1 = network.add_lut(fshort, nots);  // level 1
  const std::array<NodeId, 1> flong1{b};
  const NodeId l1 = network.add_lut(flong1, nots);  // level 1
  const std::array<NodeId, 1> flong2{l1};
  const NodeId l2 = network.add_lut(flong2, nots);  // level 2
  const std::array<NodeId, 2> fy{s1, l2};
  const NodeId y = network.add_lut(fy, kAnd2);  // level 3
  network.add_po(y);

  const MffcInfo info = compute_mffc(network, y);
  EXPECT_EQ(info.members.size(), 4u);
  ASSERT_EQ(info.leaves.size(), 2u);  // s1 and l1
  // depth = ((3-1) + (3-1)) / 2 = 2.
  EXPECT_DOUBLE_EQ(info.depth, 2.0);
}

TEST(Mffc, PiAndConstantHaveEmptyMffc) {
  Network network;
  const NodeId a = network.add_pi();
  const NodeId c = network.add_constant(true);
  EXPECT_TRUE(compute_mffc(network, a).members.empty());
  EXPECT_DOUBLE_EQ(compute_mffc(network, a).depth, 0.0);
  EXPECT_TRUE(compute_mffc(network, c).members.empty());
}

TEST(MffcDepthCache, MatchesDirectComputation) {
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const std::array<NodeId, 2> f1{a, b};
  const NodeId g1 = network.add_lut(f1, kAnd2);
  const std::array<NodeId, 2> f2{g1, b};
  const NodeId g2 = network.add_lut(f2, kAnd2);
  network.add_po(g2);

  const MffcDepthCache cache(network);
  network.for_each_node([&](NodeId id) {
    EXPECT_DOUBLE_EQ(cache.depth(id), compute_mffc(network, id).depth);
    // Second query hits the cache and must agree.
    EXPECT_DOUBLE_EQ(cache.depth(id), compute_mffc(network, id).depth);
  });
}

}  // namespace
}  // namespace simgen::net

// Resource-accounting tests: RSS sampling, the res.* gauge export, and
// the SIMGEN_ALLOC_STATS allocation counter. The alloc-stats flag is
// latched at the process's first allocation (inside the operator new
// replacement, before main), so the opted-in case re-runs itself in a
// child process with the environment set.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "obs/resource.hpp"

namespace simgen {
namespace {

#ifndef SIMGEN_NO_TELEMETRY

TEST(Resource, SamplesNonZeroRss) {
  const obs::ResourceSample sample = obs::sample_resources();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(sample.peak_rss_kb, 0u);
  EXPECT_GT(sample.current_rss_kb, 0u);
  EXPECT_GE(sample.peak_rss_kb, sample.current_rss_kb)
      << "high-water mark can never be below the current RSS";
#endif
}

TEST(Resource, PeakRssIsMonotone) {
  const obs::ResourceSample before = obs::sample_resources();
  // Touch 32 MB so the pages actually land in the resident set.
  std::vector<unsigned char> ballast(32u << 20, 1);
  for (std::size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 2;
  const obs::ResourceSample during = obs::sample_resources();
  EXPECT_GE(during.peak_rss_kb, before.peak_rss_kb);
#if defined(__linux__)
  EXPECT_GE(during.current_rss_kb + 1024, before.current_rss_kb + (32u << 10))
      << "32 MB of touched pages must show up in VmRSS (1 MB slack)";
#endif
}

TEST(Resource, GaugeExportPublishesRss) {
  const obs::ResourceSample sample = obs::sample_resource_gauges();
  EXPECT_DOUBLE_EQ(obs::gauge_value("res.peak_rss_mb"),
                   static_cast<double>(sample.peak_rss_kb) / 1024.0);
  EXPECT_DOUBLE_EQ(obs::gauge_value("res.current_rss_mb"),
                   static_cast<double>(sample.current_rss_kb) / 1024.0);
  const obs::TelemetrySnapshot snapshot = obs::capture_snapshot();
  EXPECT_TRUE(snapshot.gauges.count("res.peak_rss_mb"))
      << "resource gauges must ride along in every snapshot";
}

TEST(Resource, AllocStatsAreZeroWhenNotOptedIn) {
  // ctest never sets SIMGEN_ALLOC_STATS, so the env-gated counters stay
  // flat even though the operator new replacement is linked in.
  if (std::getenv("SIMGEN_ALLOC_STATS") != nullptr)
    GTEST_SKIP() << "environment opted in; covered by AllocStats below";
  EXPECT_FALSE(obs::alloc_stats_enabled());
  const obs::ResourceSample sample = obs::sample_resources();
  EXPECT_EQ(sample.alloc_count, 0u);
  EXPECT_EQ(sample.alloc_bytes, 0u);
}

TEST(Resource, AllocStatsCountWhenOptedIn) {
  if (std::getenv("SIMGEN_ALLOC_STATS") != nullptr) {
    // Child leg (or the whole suite ran opted in): counters must move.
    ASSERT_TRUE(obs::alloc_stats_enabled());
    const obs::ResourceSample before = obs::sample_resources();
    auto block = std::make_unique<std::vector<unsigned char>>(1u << 20, 3);
    const obs::ResourceSample after = obs::sample_resources();
    block.reset();
    EXPECT_GT(after.alloc_count, before.alloc_count);
    EXPECT_GE(after.alloc_bytes, before.alloc_bytes + (1u << 20));
    return;
  }
#if defined(__linux__)
  // Parent leg: the flag was already latched off at our first
  // allocation, so opt in by re-running this very test in a child with
  // the environment set.
  char exe[4096];
  const ssize_t len = readlink("/proc/self/exe", exe, sizeof exe - 1);
  ASSERT_GT(len, 0);
  exe[static_cast<std::size_t>(len)] = '\0';
  const std::string command =
      std::string("SIMGEN_ALLOC_STATS=1 '") + exe +
      "' --gtest_filter=Resource.AllocStatsCountWhenOptedIn >/dev/null 2>&1";
  EXPECT_EQ(std::system(command.c_str()), 0)
      << "opted-in child run failed: " << command;
#else
  GTEST_SKIP() << "needs /proc/self/exe to respawn with the env set";
#endif
}

#else  // SIMGEN_NO_TELEMETRY

TEST(ResourceStubs, ReturnEmptySamples) {
  EXPECT_FALSE(obs::alloc_stats_enabled());
  const obs::ResourceSample sample = obs::sample_resources();
  EXPECT_EQ(sample.current_rss_kb, 0u);
  EXPECT_EQ(sample.peak_rss_kb, 0u);
  EXPECT_EQ(obs::sample_resource_gauges().alloc_count, 0u);
}

#endif  // SIMGEN_NO_TELEMETRY

}  // namespace
}  // namespace simgen

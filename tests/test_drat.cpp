/// \file test_drat.cpp
/// \brief DRAT proof logging and the backward checker.
///
/// Covers the full certification loop: the solver logs a proof through
/// sat::ProofTracer, and check::DratChecker / check::Certifier verify the
/// UNSAT verdicts — including that mutated (corrupted) proofs are
/// rejected and that SAT runs produce no refutation.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "aig/aig_to_network.hpp"
#include "benchgen/generator.hpp"
#include "check/drat.hpp"
#include "mapping/lut_mapper.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "sweep/cec.hpp"

namespace simgen {
namespace {

/// Pigeonhole formula PHP(pigeons, holes): pigeon p sits in some hole
/// (one clause per pigeon) and no two pigeons share a hole. UNSAT iff
/// pigeons > holes. Variable (p, h) = p * holes + h.
void add_pigeonhole(sat::Solver& solver, unsigned pigeons, unsigned holes) {
  std::vector<std::vector<sat::Var>> var(pigeons, std::vector<sat::Var>(holes));
  for (unsigned p = 0; p < pigeons; ++p)
    for (unsigned h = 0; h < holes; ++h) var[p][h] = solver.new_var();
  for (unsigned p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (unsigned h = 0; h < holes; ++h) clause.push_back(sat::pos(var[p][h]));
    solver.add_clause(clause);
  }
  for (unsigned h = 0; h < holes; ++h)
    for (unsigned p1 = 0; p1 + 1 < pigeons; ++p1)
      for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
        solver.add_clause({sat::neg(var[p1][h]), sat::neg(var[p2][h])});
}

TEST(Drat, PigeonholeRefutationCertifies) {
  sat::Solver solver;
  sat::ProofRecorder recorder;
  solver.set_proof_tracer(&recorder);
  add_pigeonhole(solver, 5, 4);
  ASSERT_EQ(solver.solve(), sat::Result::kUnsat);
  EXPECT_TRUE(recorder.has_empty_lemma());

  check::DratStats stats;
  EXPECT_TRUE(check::check_recorded_proof(recorder.steps(), {}, &stats));
  EXPECT_GT(stats.lemmas.value(), 0u);
  EXPECT_GT(stats.checked_lemmas.value(), 0u);
  EXPECT_EQ(stats.failed_targets.value(), 0u);
}

TEST(Drat, SatInstanceLeavesNoRefutation) {
  sat::Solver solver;
  sat::ProofRecorder recorder;
  solver.set_proof_tracer(&recorder);
  add_pigeonhole(solver, 4, 4);  // As many holes as pigeons: satisfiable.
  ASSERT_EQ(solver.solve(), sat::Result::kSat);
  EXPECT_FALSE(recorder.has_empty_lemma());
  // The empty clause is not entailed, so certifying a refutation fails.
  EXPECT_FALSE(check::check_recorded_proof(recorder.steps(), {}));
}

TEST(Drat, MutatedProofIsRejected) {
  sat::Solver solver;
  sat::ProofRecorder recorder;
  solver.set_proof_tracer(&recorder);
  add_pigeonhole(solver, 5, 4);
  ASSERT_EQ(solver.solve(), sat::Result::kUnsat);
  ASSERT_TRUE(check::check_recorded_proof(recorder.steps(), {}));

  // Flipping one literal of a derived lemma must break some RUP check:
  // either the lemma itself or a later step depending on the original.
  // (Some flips happen to remain derivable; require that at least one
  // mutation of some nonempty lemma is caught.)
  bool some_mutation_rejected = false;
  const std::vector<sat::ProofStep> pristine = recorder.steps();
  for (std::size_t i = 0; i < pristine.size() && !some_mutation_rejected; ++i) {
    if (pristine[i].kind != sat::ProofStep::Kind::kLemma) continue;
    if (pristine[i].clause.empty()) continue;
    std::vector<sat::ProofStep> mutated = pristine;
    mutated[i].clause[0] = ~mutated[i].clause[0];
    some_mutation_rejected = !check::check_recorded_proof(mutated, {});
  }
  EXPECT_TRUE(some_mutation_rejected);
}

TEST(Drat, DroppedLemmasAreRejected) {
  sat::Solver solver;
  sat::ProofRecorder recorder;
  solver.set_proof_tracer(&recorder);
  add_pigeonhole(solver, 5, 4);
  ASSERT_EQ(solver.solve(), sat::Result::kUnsat);

  // With every derivation stripped, only the axioms remain — PHP has no
  // unit clauses, so the empty clause is not one propagation away and
  // the refutation cannot be certified.
  std::vector<sat::ProofStep> axioms_only;
  for (const sat::ProofStep& step : recorder.steps())
    if (step.kind == sat::ProofStep::Kind::kAxiom) axioms_only.push_back(step);
  ASSERT_LT(axioms_only.size(), recorder.steps().size());
  EXPECT_FALSE(check::check_recorded_proof(axioms_only, {}));

  // Dropping a single load-bearing lemma must also break the check:
  // some later lemma (or the final conflict) is no longer one
  // propagation pass away. Not every lemma is load-bearing, so require
  // at least one drop to be caught.
  bool some_drop_rejected = false;
  const std::vector<sat::ProofStep>& pristine = recorder.steps();
  for (std::size_t i = 0; i < pristine.size() && !some_drop_rejected; ++i) {
    if (pristine[i].kind != sat::ProofStep::Kind::kLemma) continue;
    if (pristine[i].clause.empty()) continue;
    std::vector<sat::ProofStep> truncated;
    for (std::size_t j = 0; j < pristine.size(); ++j)
      if (j != i) truncated.push_back(pristine[j]);
    some_drop_rejected = !check::check_recorded_proof(truncated, {});
  }
  EXPECT_TRUE(some_drop_rejected);
}

TEST(Drat, BogusDeletionMarksProofCorrupt) {
  sat::Solver solver;
  sat::ProofRecorder recorder;
  solver.set_proof_tracer(&recorder);
  add_pigeonhole(solver, 5, 4);
  ASSERT_EQ(solver.solve(), sat::Result::kUnsat);

  // Deleting a clause that was never added is an inconsistent stream.
  std::vector<sat::ProofStep> mutated;
  mutated.push_back({sat::ProofStep::Kind::kDelete, {sat::pos(sat::Var{0}), sat::pos(sat::Var{1})}});
  mutated.insert(mutated.end(), recorder.steps().begin(),
                 recorder.steps().end());
  EXPECT_FALSE(check::check_recorded_proof(mutated, {}));
}

// Regression (fuzz-found, tests/repros/drat_clause_permutation.blif):
// RUP propagation permutes stored clauses in place to maintain the watch
// invariant, so by deletion time a clause's literal order no longer
// matches its normalized (sorted) form. Deletion used an exact vector
// compare and an order-dependent hash, failed to find the permuted
// clause, and marked sound proofs corrupt — which only fired on
// instances big enough to trigger the solver's learnt-clause reduction.
TEST(Drat, DeletionRecognizesPropagationPermutedClauses) {
  check::DratChecker checker;
  const sat::Var a{0}, b{1}, c{2}, d{3};
  const sat::Lit big[] = {sat::pos(a), sat::pos(b), sat::pos(c), sat::pos(d)};
  const sat::Lit not_a[] = {sat::neg(a)};
  const sat::Lit not_b[] = {sat::neg(b)};
  checker.add_axiom(big);
  checker.add_axiom(not_a);
  checker.add_axiom(not_b);

  // Certifying {c, d} runs RUP with ~c, ~d asserted: propagating ~a
  // visits the 4-clause through its watch on `a` and swaps literals to
  // restore the watch invariant, leaving the stored clause permuted.
  const sat::Lit target[] = {sat::pos(c), sat::pos(d)};
  EXPECT_TRUE(checker.certify(target));

  // The deletion names the clause in a (re-)normalized order; it must
  // still be recognized against the permuted stored copy.
  const sat::Lit del[] = {sat::pos(d), sat::pos(c), sat::pos(b), sat::pos(a)};
  checker.delete_clause(del);

  // A corrupt checker refuses every later target; a healthy one still
  // certifies what the remaining units entail.
  EXPECT_TRUE(checker.certify(not_a));
  EXPECT_EQ(checker.stats().failed_targets.value(), 0u);
}

TEST(Drat, AssumptionUnsatCertifiesNegatedAssumptions) {
  // x & (x -> y) & (y -> z); assuming ~z is UNSAT, and the checker can
  // certify the clause (z) — the negated assumption.
  sat::Solver solver;
  check::Certifier certifier(solver);
  const sat::Var x = solver.new_var();
  const sat::Var y = solver.new_var();
  const sat::Var z = solver.new_var();
  solver.add_clause({sat::pos(x)});
  solver.add_clause({sat::neg(x), sat::pos(y)});
  solver.add_clause({sat::neg(y), sat::pos(z)});

  const sat::Lit assumption = sat::neg(z);
  ASSERT_EQ(solver.solve({assumption}), sat::Result::kUnsat);
  EXPECT_TRUE(certifier.certify_unsat({&assumption, 1}));
  EXPECT_EQ(certifier.stats().certified_targets.value(), 1u);
  EXPECT_EQ(certifier.stats().failed_targets.value(), 0u);
}

TEST(Drat, CertifierRejectsUnentailedTarget) {
  // A formula with no constraints between a and b cannot certify (~a).
  sat::Solver solver;
  check::Certifier certifier(solver);
  const sat::Var a = solver.new_var();
  const sat::Var b = solver.new_var();
  solver.add_clause({sat::pos(a), sat::pos(b)});
  const sat::Lit assumption = sat::pos(a);
  EXPECT_FALSE(certifier.certify_unsat({&assumption, 1}));
  EXPECT_EQ(certifier.stats().failed_targets.value(), 1u);
}

TEST(Drat, IncrementalCertificationAcrossSolveCalls) {
  // The sweeping pattern: many solve(assumptions) calls against one
  // growing formula, each UNSAT certified incrementally. Chain
  // implications x0 -> x1 -> ... -> xn and refute ~xn under x0 at each
  // prefix length.
  sat::Solver solver;
  check::Certifier certifier(solver);
  constexpr unsigned kChain = 20;
  std::vector<sat::Var> vars;
  for (unsigned i = 0; i <= kChain; ++i) vars.push_back(solver.new_var());
  for (unsigned i = 0; i < kChain; ++i) {
    solver.add_clause({sat::neg(vars[i]), sat::pos(vars[i + 1])});
    const sat::Lit assumptions[2] = {sat::pos(vars[0]), sat::neg(vars[i + 1])};
    ASSERT_EQ(solver.solve({assumptions[0], assumptions[1]}),
              sat::Result::kUnsat)
        << "chain length " << i;
    EXPECT_TRUE(certifier.certify_unsat({assumptions, 2}));
  }
  EXPECT_EQ(certifier.stats().certified_targets.value(), kChain);
  EXPECT_EQ(certifier.stats().failed_targets.value(), 0u);
}

TEST(Drat, CertifiedCecProvesEveryUnsatVerdict) {
  // End-to-end: a mapped circuit against its direct AIG translation,
  // with every UNSAT verdict (merges + output proofs) certified.
  benchgen::CircuitSpec spec;
  spec.name = "drat_cec";
  spec.num_pis = 8;
  spec.num_pos = 4;
  spec.num_gates = 120;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network mapped = mapping::map_to_luts(graph);
  const net::Network direct = aig::to_network(graph);

  sweep::CecOptions options;
  options.certify = true;
  const sweep::CecResult result =
      sweep::check_equivalence(mapped, direct, options);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.certified_outputs, result.outputs_proven);
  EXPECT_EQ(result.sweep_stats.certified_unsat,
            result.sweep_stats.proven_equivalent);
}

TEST(Drat, RecorderWritesDratAndDimacs) {
  sat::Solver solver;
  sat::ProofRecorder recorder;
  solver.set_proof_tracer(&recorder);
  add_pigeonhole(solver, 4, 3);
  ASSERT_EQ(solver.solve(), sat::Result::kUnsat);

  std::ostringstream dimacs;
  recorder.write_dimacs(dimacs);
  EXPECT_NE(dimacs.str().find("p cnf "), std::string::npos);

  std::ostringstream drat;
  recorder.write_drat(drat);
  // The refutation must end in the empty clause: a line holding just "0".
  EXPECT_NE(drat.str().find("0\n"), std::string::npos);
  const std::string text = drat.str();
  const std::size_t last_line = text.rfind('\n', text.size() - 2);
  EXPECT_EQ(text.substr(last_line + 1), "0\n");
}

}  // namespace
}  // namespace simgen

// BLIF reader/writer tests: parsing, error reporting, and functional
// round-trips (structure may change; function must not).
#include "io/blif.hpp"

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::io {
namespace {

// Functional comparison on 64 random patterns per round.
void expect_same_function(const net::Network& a, const net::Network& b,
                          int rounds = 4) {
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  sim::Simulator sim_a(a), sim_b(b);
  util::Rng rng(42);
  for (int round = 0; round < rounds; ++round) {
    std::vector<sim::PatternWord> words(a.num_pis());
    for (auto& w : words) w = rng();
    sim_a.simulate_word(words);
    sim_b.simulate_word(words);
    for (std::size_t i = 0; i < a.num_pos(); ++i)
      ASSERT_EQ(sim_a.value(a.pos()[i]), sim_b.value(b.pos()[i]))
          << "PO " << i << " differs";
  }
}

constexpr const char* kAndOr = R"(
# simple two-gate model
.model andor
.inputs a b c
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names a c g
11 1
.end
)";

TEST(BlifReader, ParsesSimpleModel) {
  const net::Network network = read_blif_string(kAndOr);
  EXPECT_EQ(network.name(), "andor");
  EXPECT_EQ(network.num_pis(), 3u);
  EXPECT_EQ(network.num_pos(), 2u);
  EXPECT_EQ(network.num_luts(), 3u);

  sim::Simulator sim(network);
  const sim::PatternWord a = 0xaaaaaaaaaaaaaaaaull;
  const sim::PatternWord b = 0xccccccccccccccccull;
  const sim::PatternWord c = 0xf0f0f0f0f0f0f0f0ull;
  sim.simulate_word(std::vector<sim::PatternWord>{a, b, c});
  EXPECT_EQ(sim.value(network.pos()[0]), (a & b) | c);
  EXPECT_EQ(sim.value(network.pos()[1]), a & c);
}

TEST(BlifReader, OffsetCover) {
  // Cover given in the OFF plane: f is 0 iff a=1,b=1 -> f = nand.
  const net::Network network = read_blif_string(
      ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n");
  sim::Simulator sim(network);
  const sim::PatternWord a = 0xaaaaaaaaaaaaaaaaull;
  const sim::PatternWord b = 0xccccccccccccccccull;
  sim.simulate_word(std::vector<sim::PatternWord>{a, b});
  EXPECT_EQ(sim.value(network.pos()[0]), ~(a & b));
}

TEST(BlifReader, ConstantNodes) {
  const net::Network network = read_blif_string(
      ".model m\n.inputs a\n.outputs f g\n.names f\n1\n.names g\n.end\n");
  sim::Simulator sim(network);
  sim.simulate_word(std::vector<sim::PatternWord>{0});
  EXPECT_EQ(sim.value(network.pos()[0]), ~sim::PatternWord{0});
  EXPECT_EQ(sim.value(network.pos()[1]), sim::PatternWord{0});
}

TEST(BlifReader, LineContinuation) {
  const net::Network network = read_blif_string(
      ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n");
  EXPECT_EQ(network.num_pis(), 2u);
}

TEST(BlifReader, OutOfOrderDefinitions) {
  // t2 is referenced before its .names block appears.
  const net::Network network = read_blif_string(
      ".model m\n.inputs a b\n.outputs f\n"
      ".names t2 f\n1 1\n.names a b t2\n10 1\n.end\n");
  EXPECT_EQ(network.num_luts(), 2u);
}

TEST(BlifReader, Errors) {
  EXPECT_THROW(read_blif_string(""), std::runtime_error);
  // Latches are unsupported.
  EXPECT_THROW(read_blif_string(".model m\n.latch a b 0\n.end\n"),
               std::runtime_error);
  // Undefined signal.
  EXPECT_THROW(
      read_blif_string(".model m\n.inputs a\n.outputs f\n.end\n"),
      std::runtime_error);
  // Cube width mismatch.
  EXPECT_THROW(read_blif_string(".model m\n.inputs a b\n.outputs f\n"
                                ".names a b f\n111 1\n.end\n"),
               std::runtime_error);
  // Combinational cycle.
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs f\n"
                                ".names g f\n1 1\n.names f g\n1 1\n.end\n"),
               std::runtime_error);
  // Redefinition.
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs f\n"
                                ".names a f\n1 1\n.names a f\n0 1\n.end\n"),
               std::runtime_error);
}

TEST(BlifWriter, RoundTripSimpleModel) {
  const net::Network original = read_blif_string(kAndOr);
  const net::Network reparsed = read_blif_string(write_blif_string(original));
  expect_same_function(original, reparsed);
}

TEST(BlifWriter, RoundTripConstants) {
  const net::Network original = read_blif_string(
      ".model m\n.inputs a\n.outputs f g h\n.names f\n1\n.names g\n"
      ".names a h\n0 1\n.end\n");
  const net::Network reparsed = read_blif_string(write_blif_string(original));
  expect_same_function(original, reparsed);
}

TEST(BlifWriter, RoundTripGeneratedBenchmark) {
  benchgen::CircuitSpec spec;
  spec.name = "blif_roundtrip";
  spec.num_gates = 400;
  const net::Network original = benchgen::generate_mapped(spec);
  const net::Network reparsed = read_blif_string(write_blif_string(original));
  expect_same_function(original, reparsed, 8);
}

}  // namespace
}  // namespace simgen::io

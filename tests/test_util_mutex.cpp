/// \file test_util_mutex.cpp
/// \brief Unit tests for the annotated synchronization wrappers
/// (util::Mutex / util::LockGuard / util::CondVar).
///
/// The wrappers are one-line forwards to std primitives; what these tests
/// pin down is the contract the rest of the codebase (and the
/// thread-safety annotations) rely on: mutual exclusion is real,
/// LockGuard releases on every exit path, try_lock observes foreign
/// ownership, and CondVar::wait releases the mutex while blocked and
/// holds it again when it returns.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mutex.hpp"

namespace simgen::util {
namespace {

TEST(Mutex, ProvidesMutualExclusion) {
  Mutex mutex;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mutex, &counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        const LockGuard lock(mutex);
        ++counter;  // would race (and trip TSan) without real exclusion
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(Mutex, TryLockFailsWhileHeldElsewhere) {
  Mutex mutex;
  mutex.lock();

  bool acquired = true;
  std::thread prober([&mutex, &acquired] { acquired = mutex.try_lock(); });
  prober.join();
  EXPECT_FALSE(acquired);

  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Mutex, LockGuardReleasesOnScopeExit) {
  Mutex mutex;
  {
    const LockGuard lock(mutex);
  }
  // If the guard leaked the lock this try_lock would fail.
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(CondVar, WaitReleasesMutexWhileBlocked) {
  Mutex mutex;
  CondVar cv;
  bool woken = false;
  bool waiter_entered = false;

  std::thread waiter([&] {
    const LockGuard lock(mutex);
    waiter_entered = true;
    while (!woken) cv.wait(mutex);
  });

  // The notifier can only take the mutex and flip the flag if wait()
  // really released it; a wait() that kept the lock would deadlock here
  // (and the `woken` write would be a TSan race if wait() returned
  // without reacquiring).
  for (;;) {
    const LockGuard lock(mutex);
    if (waiter_entered) {
      woken = true;
      break;
    }
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woken);
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      const LockGuard lock(mutex);
      while (!go) cv.wait(mutex);
      ++awake;
    });
  }

  {
    const LockGuard lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (std::thread& thread : waiters) thread.join();
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace simgen::util

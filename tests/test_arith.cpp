// Arithmetic builder tests: each circuit must compute exact word
// arithmetic (checked exhaustively for small widths, randomly for larger)
// and the two adder architectures must be functionally identical.
#include "benchgen/arith.hpp"

#include <gtest/gtest.h>

#include "sweep/cec.hpp"
#include "mapping/lut_mapper.hpp"
#include "util/rng.hpp"

namespace simgen::benchgen {
namespace {

// Evaluates an AIG on one integer input assignment (single pattern).
std::uint64_t eval(const aig::Aig& graph, std::uint64_t input_bits) {
  std::vector<std::uint64_t> words(graph.num_pis());
  for (std::size_t i = 0; i < words.size(); ++i)
    words[i] = ((input_bits >> i) & 1u) ? ~0ull : 0ull;
  const auto out = graph.simulate_words(words);
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] & 1u) result |= 1ull << i;
  return result;
}

TEST(Arith, RippleCarryAdderExhaustive) {
  const unsigned width = 4;
  const aig::Aig adder = build_ripple_carry_adder(width);
  ASSERT_EQ(adder.num_pis(), 2 * width + 1);
  ASSERT_EQ(adder.num_pos(), width + 1);
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b)
      for (std::uint64_t cin = 0; cin < 2; ++cin) {
        const std::uint64_t inputs = a | (b << width) | (cin << (2 * width));
        EXPECT_EQ(eval(adder, inputs), a + b + cin)
            << a << "+" << b << "+" << cin;
      }
}

TEST(Arith, CarrySelectAdderExhaustive) {
  const unsigned width = 5;
  const aig::Aig adder = build_carry_select_adder(width, 2);
  for (std::uint64_t a = 0; a < 32; ++a)
    for (std::uint64_t b = 0; b < 32; ++b) {
      const std::uint64_t inputs = a | (b << width);
      EXPECT_EQ(eval(adder, inputs), a + b);
      EXPECT_EQ(eval(adder, inputs | (1ull << (2 * width))), a + b + 1);
    }
}

TEST(Arith, AddersRandomizedWide) {
  const unsigned width = 16;
  const aig::Aig rca = build_ripple_carry_adder(width);
  const aig::Aig csa = build_carry_select_adder(width, 4);
  util::Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t a = rng.below(1ull << width);
    const std::uint64_t b = rng.below(1ull << width);
    const std::uint64_t cin = rng.below(2);
    const std::uint64_t inputs = a | (b << width) | (cin << (2 * width));
    EXPECT_EQ(eval(rca, inputs), a + b + cin);
    EXPECT_EQ(eval(csa, inputs), a + b + cin);
  }
}

TEST(Arith, ArrayMultiplierExhaustiveSmall) {
  const unsigned width = 4;
  const aig::Aig mul = build_array_multiplier(width);
  ASSERT_EQ(mul.num_pos(), 2 * width);
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b)
      EXPECT_EQ(eval(mul, a | (b << width)), a * b) << a << "*" << b;
}

TEST(Arith, MultiplierRandomizedWide) {
  const unsigned width = 8;
  const aig::Aig mul = build_array_multiplier(width);
  util::Rng rng(13);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t a = rng.below(1ull << width);
    const std::uint64_t b = rng.below(1ull << width);
    EXPECT_EQ(eval(mul, a | (b << width)), a * b);
  }
}

TEST(Arith, ComparatorExhaustive) {
  const unsigned width = 4;
  const aig::Aig cmp = build_comparator(width);
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b) {
      const std::uint64_t out = eval(cmp, a | (b << width));
      EXPECT_EQ((out >> 0) & 1u, a < b ? 1u : 0u);
      EXPECT_EQ((out >> 1) & 1u, a == b ? 1u : 0u);
      EXPECT_EQ((out >> 2) & 1u, a > b ? 1u : 0u);
    }
}

TEST(Arith, PopcountExhaustive) {
  const unsigned width = 9;
  const aig::Aig pc = build_popcount(width);
  for (std::uint64_t x = 0; x < (1ull << width); ++x) {
    const std::uint64_t expected =
        static_cast<std::uint64_t>(__builtin_popcountll(x));
    EXPECT_EQ(eval(pc, x), expected) << "x=" << x;
  }
}

TEST(Arith, WidthZeroRejected) {
  EXPECT_THROW(build_ripple_carry_adder(0), std::invalid_argument);
  EXPECT_THROW(build_array_multiplier(0), std::invalid_argument);
  EXPECT_THROW(build_comparator(0), std::invalid_argument);
  EXPECT_THROW(build_popcount(0), std::invalid_argument);
  EXPECT_THROW(build_carry_select_adder(4, 0), std::invalid_argument);
}

TEST(Arith, AdderArchitecturesProvedEquivalentByCec) {
  // The textbook CEC problem: two adder architectures, full stack proof.
  const unsigned width = 8;
  const net::Network rca =
      mapping::map_to_luts(build_ripple_carry_adder(width));
  const net::Network csa =
      mapping::map_to_luts(build_carry_select_adder(width, 3));
  const sweep::CecResult result =
      sweep::check_equivalence(rca, csa, sweep::CecOptions{});
  EXPECT_TRUE(result.equivalent);
}

TEST(Arith, MismatchedAddersYieldCounterexample) {
  // Drop the carry-in handling in one adder: CEC must find a witness.
  const unsigned width = 6;
  const aig::Aig good = build_ripple_carry_adder(width);
  aig::Aig bad("bad_adder");
  // Same interface, but cin is ignored (wired as constant 0 internally).
  std::vector<aig::Lit> a, b;
  for (unsigned i = 0; i < width; ++i) a.push_back(bad.add_pi());
  for (unsigned i = 0; i < width; ++i) b.push_back(bad.add_pi());
  bad.add_pi();  // cin, unused
  aig::Lit carry = aig::kLitFalse;
  for (unsigned i = 0; i < width; ++i) {
    const aig::Lit axb = bad.xor2(a[i], b[i]);
    bad.add_po(bad.xor2(axb, carry));
    carry = bad.or2(bad.and2(a[i], b[i]), bad.and2(axb, carry));
  }
  bad.add_po(carry);

  const sweep::CecResult result = sweep::check_equivalence(
      mapping::map_to_luts(good), mapping::map_to_luts(bad),
      sweep::CecOptions{});
  ASSERT_FALSE(result.equivalent);
  // The witness must set cin=1 (the only way the two differ).
  EXPECT_TRUE(result.counterexample.back());
}

}  // namespace
}  // namespace simgen::benchgen

// PatternGenerator (Algorithm 1) tests. The central property: every
// target the generator claims satisfied is actually driven to its OUTgold
// value when the produced vector is simulated (with don't-care PIs filled
// arbitrarily).
#include "simgen/generator.hpp"

#include <gtest/gtest.h>

#include <array>

#include "benchgen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::core {
namespace {

// Simulates `pi_values` (X filled with `fill_rng` bits) and returns the
// single-pattern bit of each node in `probes`.
std::vector<bool> simulate_vector(const net::Network& network,
                                  const std::vector<TVal>& pi_values,
                                  std::span<const net::NodeId> probes,
                                  util::Rng& fill_rng) {
  sim::Simulator simulator(network);
  std::vector<sim::PatternWord> words(network.num_pis(), 0);
  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    bool bit = false;
    switch (pi_values[i]) {
      case TVal::kZero: bit = false; break;
      case TVal::kOne: bit = true; break;
      case TVal::kUnknown: bit = fill_rng.flip(); break;
    }
    words[i] = bit ? ~sim::PatternWord{0} : 0;
  }
  simulator.simulate_word(words);
  std::vector<bool> out;
  for (const net::NodeId probe : probes) out.push_back(simulator.value(probe) & 1u);
  return out;
}

TEST(Generator, SingleTargetOnSmallCircuit) {
  // z = and(x, y), x = a&b, y = b|c. Target z=1 forces a=b=1 and leaves c
  // free via the DC row of the OR.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const net::NodeId c = network.add_pi();
  const std::array<net::NodeId, 2> fx{a, b};
  const net::NodeId x = network.add_lut(fx, tt::TruthTable::and_gate(2));
  const std::array<net::NodeId, 2> fy{b, c};
  const net::NodeId y = network.add_lut(fy, tt::TruthTable::or_gate(2));
  const std::array<net::NodeId, 2> fz{x, y};
  const net::NodeId z = network.add_lut(fz, tt::TruthTable::and_gate(2));
  network.add_po(z);

  PatternGenerator generator(network, GeneratorOptions{}, 1);
  const Target target{z, true};
  const VectorResult result = generator.generate(std::span(&target, 1));
  EXPECT_EQ(result.satisfied_one, 1u);

  util::Rng fill(99);
  for (int round = 0; round < 8; ++round) {
    const auto probe = simulate_vector(network, result.pi_values,
                                       std::span(&z, 1), fill);
    EXPECT_TRUE(probe[0]) << "vector must force z=1 for any DC fill";
  }
}

TEST(Generator, ImpossibleTargetConflicts) {
  // g = and(a, !a) is constant 0 — gold 1 must conflict, not satisfy.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const std::array<net::NodeId, 2> f{a, a};
  const net::NodeId g = network.add_lut(
      f, tt::TruthTable::projection(2, 0) & ~tt::TruthTable::projection(2, 1));
  network.add_po(g);

  PatternGenerator generator(network, GeneratorOptions{}, 1);
  const Target target{g, true};
  const VectorResult result = generator.generate(std::span(&target, 1));
  EXPECT_EQ(result.satisfied_one, 0u);
  EXPECT_FALSE(result.usable());
  EXPECT_GE(generator.stats().conflicts.value(), 1u);
}

TEST(Generator, OppositeTargetsMakeUsableVector) {
  // Two independent ANDs can take opposite values simultaneously.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const net::NodeId c = network.add_pi();
  const net::NodeId d = network.add_pi();
  const std::array<net::NodeId, 2> f1{a, b};
  const net::NodeId g1 = network.add_lut(f1, tt::TruthTable::and_gate(2));
  const std::array<net::NodeId, 2> f2{c, d};
  const net::NodeId g2 = network.add_lut(f2, tt::TruthTable::and_gate(2));
  network.add_po(g1);
  network.add_po(g2);

  PatternGenerator generator(network, GeneratorOptions{}, 7);
  const std::array<Target, 2> targets{Target{g1, true}, Target{g2, false}};
  const VectorResult result = generator.generate(targets);
  EXPECT_TRUE(result.usable());

  util::Rng fill(5);
  const std::array<net::NodeId, 2> probes{g1, g2};
  const auto bits = simulate_vector(network, result.pi_values, probes, fill);
  EXPECT_TRUE(bits[0]);
  EXPECT_FALSE(bits[1]);
}

TEST(Generator, ConflictingTargetsLoseTheLaterOne) {
  // Same node demanded 1 by one target and 0 by another: exactly one wins.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::and_gate(2));
  network.add_po(g);

  PatternGenerator generator(network, GeneratorOptions{}, 3);
  const std::array<Target, 2> targets{Target{g, true}, Target{g, false}};
  const VectorResult result = generator.generate(targets);
  EXPECT_EQ(result.satisfied_one + result.satisfied_zero, 1u);
  EXPECT_FALSE(result.usable());
}

// Property over all strategy arms and generated benchmarks: claimed
// targets hold under simulation for any fill of the free PIs.
struct ArmParam {
  ImplicationStrategy implication;
  DecisionStrategy decision;
};

class GeneratorArm : public ::testing::TestWithParam<ArmParam> {};

TEST_P(GeneratorArm, SatisfiedTargetsHoldUnderSimulation) {
  benchgen::CircuitSpec spec;
  spec.name = "gen_prop";
  spec.num_pis = 12;
  spec.num_pos = 6;
  spec.num_gates = 150;
  const net::Network network = benchgen::generate_mapped(spec);

  GeneratorOptions options;
  options.implication = GetParam().implication;
  options.decision = GetParam().decision;
  PatternGenerator generator(network, options, 11);

  // Collect LUT nodes as target candidates.
  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });
  ASSERT_GE(luts.size(), 4u);

  util::Rng pick(13), fill(17);
  for (int round = 0; round < 30; ++round) {
    std::vector<Target> targets;
    for (int t = 0; t < 4; ++t)
      targets.push_back(Target{luts[pick.below(luts.size())],
                               static_cast<bool>(t & 1)});
    const VectorResult result = generator.generate(targets);

    // Re-derive which targets the generator claims: re-simulate and count
    // matches; the claimed counters must be achievable by some fill — we
    // verify the stronger per-fill property on fully constrained targets
    // by checking the totals are consistent across several fills.
    std::vector<net::NodeId> probes;
    for (const Target& target : targets) probes.push_back(target.node);
    std::size_t min_sat_one = ~std::size_t{0}, min_sat_zero = ~std::size_t{0};
    for (int f = 0; f < 6; ++f) {
      const auto bits = simulate_vector(network, result.pi_values, probes, fill);
      std::size_t one = 0, zero = 0;
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (targets[t].gold && bits[t]) ++one;
        if (!targets[t].gold && !bits[t]) ++zero;
      }
      min_sat_one = std::min(min_sat_one, one);
      min_sat_zero = std::min(min_sat_zero, zero);
    }
    // Every claimed satisfaction must hold for EVERY fill (claimed
    // targets are fully justified by assigned PIs).
    EXPECT_GE(min_sat_one, result.satisfied_one) << "round " << round;
    EXPECT_GE(min_sat_zero, result.satisfied_zero) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arms, GeneratorArm,
    ::testing::Values(
        ArmParam{ImplicationStrategy::kSimple, DecisionStrategy::kRandom},
        ArmParam{ImplicationStrategy::kAdvanced, DecisionStrategy::kRandom},
        ArmParam{ImplicationStrategy::kAdvanced, DecisionStrategy::kDontCare},
        ArmParam{ImplicationStrategy::kAdvanced,
                 DecisionStrategy::kDontCareMffc}));

TEST(Generator, StatsAccumulate) {
  benchgen::CircuitSpec spec;
  spec.name = "gen_stats";
  spec.num_gates = 100;
  const net::Network network = benchgen::generate_mapped(spec);
  PatternGenerator generator(network, GeneratorOptions{}, 1);
  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });
  std::vector<Target> targets{Target{luts[0], false}, Target{luts[1], true}};
  generator.generate(targets);
  EXPECT_EQ(generator.stats().targets_attempted.value(), 2u);
  generator.generate(targets);
  EXPECT_EQ(generator.stats().targets_attempted.value(), 4u);
}

}  // namespace
}  // namespace simgen::core

// Unit tests for util::Rng: determinism, bound correctness, and basic
// statistical sanity (these guard reproducibility of every experiment).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace simgen::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(7);
  std::array<std::uint64_t, 16> first{};
  for (auto& v : first) v = rng();
  rng.reseed(7);
  for (auto v : first) EXPECT_EQ(rng(), v);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, InRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.in_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, Uniform01Range) {
  Rng rng(23);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, FlipIsBalanced) {
  Rng rng(29);
  int heads = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.flip()) ++heads;
  EXPECT_NEAR(heads / 20000.0, 0.5, 0.02);
}

TEST(Rng, Splitmix64KnownProperties) {
  // splitmix64 must be a bijection-ish scrambler: no trivial fixed points
  // among small inputs and strong avalanche between neighbours.
  EXPECT_NE(splitmix64(0), 0u);
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(splitmix64(1) >> 32, splitmix64(2) >> 32);
}

TEST(Rng, Fnv1aDistinguishesStrings) {
  EXPECT_NE(fnv1a("alu4"), fnv1a("alu5"));
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("apex1"), fnv1a("apex1"));
}

}  // namespace
}  // namespace simgen::util

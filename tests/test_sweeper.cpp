// SAT sweeping tests: pairwise verdicts, counterexample resimulation,
// full runs to fixpoint, and soundness of every proven pair (verified by
// exhaustive or randomized simulation).
#include "sweep/sweeper.hpp"

#include <gtest/gtest.h>

#include <array>

#include "aig/aig_to_network.hpp"
#include "benchgen/generator.hpp"
#include "mapping/lut_mapper.hpp"
#include "sim/random_sim.hpp"
#include "simgen/guided_sim.hpp"
#include "sweep/cec.hpp"
#include "util/rng.hpp"

namespace simgen::sweep {
namespace {

TEST(Sweeper, ProvesDeMorganPair) {
  // g1 = !(a & b), g2 = !a | !b: equivalent by De Morgan.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g1 = network.add_lut(f, tt::TruthTable::nand_gate(2));
  const net::NodeId g2 = network.add_lut(
      f, ~tt::TruthTable::projection(2, 0) | ~tt::TruthTable::projection(2, 1));
  network.add_po(g1);
  network.add_po(g2);

  Sweeper sweeper(network, SweepOptions{});
  EXPECT_EQ(sweeper.check_pair(g1, g2), sat::Result::kUnsat);
  EXPECT_EQ(sweeper.totals().proven_equivalent, 1u);
  EXPECT_EQ(sweeper.totals().sat_calls, 1u);
}

TEST(Sweeper, DisprovesWithWitness) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g1 = network.add_lut(f, tt::TruthTable::and_gate(2));
  const net::NodeId g2 = network.add_lut(f, tt::TruthTable::or_gate(2));
  network.add_po(g1);
  network.add_po(g2);

  Sweeper sweeper(network, SweepOptions{});
  ASSERT_EQ(sweeper.check_pair(g1, g2), sat::Result::kSat);
  // The witness must actually distinguish the pair: and != or exactly when
  // inputs differ.
  const std::vector<bool> witness = sweeper.last_model_vector();
  ASSERT_EQ(witness.size(), 2u);
  EXPECT_NE(witness[0], witness[1]);
}

TEST(Sweeper, RunEmptiesAllClasses) {
  benchgen::CircuitSpec spec;
  spec.name = "sweep_run";
  spec.num_pis = 14;
  spec.num_pos = 8;
  spec.num_gates = 250;
  spec.redundancy = 0.10;
  const net::Network network = benchgen::generate_mapped(spec);

  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 4;
  run_random_simulation(simulator, classes, random_options);

  Sweeper sweeper(network, SweepOptions{});
  const SweepResult result = sweeper.run(classes, simulator);
  EXPECT_TRUE(classes.fully_refined());
  EXPECT_EQ(result.sat_calls,
            result.proven_equivalent + result.disproven + result.unresolved);
  EXPECT_EQ(result.unresolved, 0u);
  EXPECT_GE(result.sat_seconds, 0.0);

  // Soundness: every proven pair must agree on thousands of random
  // patterns.
  for (std::uint64_t round = 0; round < 32; ++round) {
    simulator.simulate_random_word(5, round);
    for (const auto& [x, y] : result.proven_pairs)
      ASSERT_EQ(simulator.value(x), simulator.value(y))
          << "proven pair disagrees under simulation";
  }
}

TEST(Sweeper, FindsInjectedRedundancies) {
  // With heavy redundancy injection the sweeper must prove at least one
  // pair equivalent (the generator plants them).
  benchgen::CircuitSpec spec;
  spec.name = "sweep_redundant";
  spec.num_gates = 300;
  spec.redundancy = 0.15;
  const net::Network network = benchgen::generate_mapped(spec);

  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 8;
  run_random_simulation(simulator, classes, random_options);

  Sweeper sweeper(network, SweepOptions{});
  const SweepResult result = sweeper.run(classes, simulator);
  EXPECT_GT(result.proven_equivalent, 0u);
}

TEST(Sweeper, CounterexampleResimulationSplitsClasses) {
  // Two nearly-identical functions that agree except on one minterm: the
  // SAT witness is the only separator, and resimulation must split them.
  net::Network network;
  std::vector<net::NodeId> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(network.add_pi());
  const auto and6 = tt::TruthTable::and_gate(6);
  tt::TruthTable almost = and6;
  almost.set_bit(0, true);  // differs from and6 only on the all-zero input
  const net::NodeId g1 = network.add_lut(pis, and6);
  const net::NodeId g2 = network.add_lut(pis, almost);
  network.add_po(g1);
  network.add_po(g2);

  sim::Simulator simulator(network);
  sim::EquivClasses classes({g1, g2});
  // No random prepass: the all-zeros separating pattern must come from
  // the SAT witness, forcing the resimulation path.
  Sweeper sweeper(network, SweepOptions{});
  const SweepResult result = sweeper.run(classes, simulator);
  EXPECT_TRUE(classes.fully_refined());
  EXPECT_EQ(result.proven_equivalent, 0u);
  EXPECT_GE(result.disproven, 1u);
  EXPECT_GE(result.resimulations, 1u);
}

TEST(Sweeper, ConflictLimitMarksUnresolved) {
  // A deliberately hard miter (xor tree pair) with a 1-conflict budget.
  net::Network network;
  std::vector<net::NodeId> pis;
  for (int i = 0; i < 10; ++i) pis.push_back(network.add_pi());
  // Two structurally different xor trees over the same inputs.
  const auto xor2 = tt::TruthTable::xor_gate(2);
  net::NodeId left = pis[0];
  for (int i = 1; i < 10; ++i) {
    const std::array<net::NodeId, 2> f{left, pis[i]};
    left = network.add_lut(f, xor2);
  }
  net::NodeId right = pis[9];
  for (int i = 8; i >= 0; --i) {
    const std::array<net::NodeId, 2> f{right, pis[i]};
    right = network.add_lut(f, xor2);
  }
  network.add_po(left);
  network.add_po(right);

  SweepOptions options;
  options.conflict_limit = 1;
  Sweeper sweeper(network, options);
  const sat::Result verdict = sweeper.check_pair(left, right);
  // Either the solver is lucky (UNSAT quickly) or it must report kUnknown;
  // with a single conflict allowed on a 10-var xor miter, expect kUnknown.
  EXPECT_EQ(verdict, sat::Result::kUnknown);
  EXPECT_EQ(sweeper.totals().unresolved, 1u);
}

TEST(Sweeper, EqualityClausesAccelerateLaterProofs) {
  // Prove a pair, then a dependent pair; the second proof must not be
  // slower than re-deriving everything (smoke check via call accounting).
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g1 = network.add_lut(f, tt::TruthTable::and_gate(2));
  const net::NodeId g2 = network.add_lut(
      f, tt::TruthTable::projection(2, 0) & tt::TruthTable::projection(2, 1));
  const std::array<net::NodeId, 1> fn1{g1};
  const net::NodeId n1 = network.add_lut(fn1, tt::TruthTable::not_gate());
  const std::array<net::NodeId, 1> fn2{g2};
  const net::NodeId n2 = network.add_lut(fn2, tt::TruthTable::not_gate());
  network.add_po(n1);
  network.add_po(n2);

  Sweeper sweeper(network, SweepOptions{});
  EXPECT_EQ(sweeper.check_pair(g1, g2), sat::Result::kUnsat);
  EXPECT_EQ(sweeper.check_pair(n1, n2), sat::Result::kUnsat);
  EXPECT_EQ(sweeper.totals().proven_equivalent, 2u);
}

TEST(Sweeper, WitnessIsHistoryIndependent) {
  // Regression: last_model_vector() used to fill PIs outside the solved
  // cone from a shared member Rng, so a witness's bytes depended on how
  // many draws earlier extractions had consumed — reading the same
  // verdict twice gave two different witnesses, and disproving an
  // unrelated pair first shifted every later witness. The fill stream is
  // now a pure function of (options.seed, salt).
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  network.add_pi();  // outside the solved cone: exercises the random fill
  network.add_pi();
  const std::array<net::NodeId, 2> fab{a, b};
  const net::NodeId g1 = network.add_lut(fab, tt::TruthTable::and_gate(2));
  const net::NodeId g2 = network.add_lut(fab, tt::TruthTable::or_gate(2));
  network.add_po(g1);
  network.add_po(g2);

  Sweeper sweeper(network, SweepOptions{});
  ASSERT_EQ(sweeper.check_pair(g1, g2), sat::Result::kSat);
  const std::vector<bool> first = sweeper.last_model_vector();
  ASSERT_EQ(first.size(), 4u);
  // Same verdict, same salt: byte-identical on every read (the old code
  // advanced the shared Rng between these two calls).
  EXPECT_EQ(sweeper.last_model_vector(), first);
  // Distinct salts get distinct fill streams but identical cone bits.
  const std::vector<bool> salted = sweeper.last_model_vector(7);
  EXPECT_EQ(salted[0], first[0]);
  EXPECT_EQ(salted[1], first[1]);
  EXPECT_EQ(sweeper.last_model_vector(7), salted);

  // A fresh sweeper that burns an unrelated extraction first must still
  // reproduce the same witness for the same (seed, salt).
  Sweeper warmed(network, SweepOptions{});
  ASSERT_EQ(warmed.check_pair(g1, g2), sat::Result::kSat);
  (void)warmed.last_model_vector(99);  // old code: this shifted the stream
  EXPECT_EQ(warmed.last_model_vector(), first)
      << "witness bytes depend on extraction history";
}

TEST(Sweeper, EveryStrategyArmIsDeterministicForAFixedSeed) {
  // Differential-fuzzing prerequisite: with a fixed seed, every guided
  // simulation strategy must reach the same verdict with the same work
  // profile on repeat runs — a flaky arm would make fuzz mismatches
  // unreproducible. One fixed seed per arm, two runs, identical stats
  // (timings excluded).
  benchgen::CircuitSpec spec;
  spec.name = "cec_arm_determinism";
  spec.num_pis = 12;
  spec.num_pos = 6;
  spec.num_gates = 220;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network mapped = mapping::map_to_luts(graph);
  const net::Network direct = aig::to_network(graph);

  std::uint64_t seed = 1000;
  for (const core::Strategy arm : core::kAllStrategies) {
    SCOPED_TRACE(std::string(core::strategy_name(arm)));
    CecOptions options;
    options.seed = ++seed;  // a distinct fixed seed per arm
    options.guided_strategy = arm;
    const CecResult first = check_equivalence(mapped, direct, options);
    const CecResult second = check_equivalence(mapped, direct, options);
    EXPECT_TRUE(first.equivalent);
    EXPECT_EQ(first.equivalent, second.equivalent);
    EXPECT_EQ(first.counterexample, second.counterexample);
    EXPECT_EQ(first.outputs_proven, second.outputs_proven);
    EXPECT_EQ(first.certified_outputs, second.certified_outputs);
    EXPECT_EQ(first.output_sat_calls, second.output_sat_calls);
    EXPECT_EQ(first.sweep_stats.sat_calls, second.sweep_stats.sat_calls);
    EXPECT_EQ(first.sweep_stats.proven_equivalent,
              second.sweep_stats.proven_equivalent);
    EXPECT_EQ(first.sweep_stats.disproven, second.sweep_stats.disproven);
    EXPECT_EQ(first.sweep_stats.unresolved, second.sweep_stats.unresolved);
    EXPECT_EQ(first.sweep_stats.resimulations, second.sweep_stats.resimulations);
    EXPECT_EQ(first.sweep_stats.proven_pairs, second.sweep_stats.proven_pairs);
  }
}

}  // namespace
}  // namespace simgen::sweep

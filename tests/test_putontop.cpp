// Tests for put_on_top (paper Section 6.4): interface arithmetic and
// functional composition.
#include "aig/putontop.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace simgen::aig {
namespace {

// Base circuit: 2 PIs, 2 POs (and, xor) — equal interface widths.
Aig make_balanced() {
  Aig graph("balanced");
  const Lit a = graph.add_pi("a");
  const Lit b = graph.add_pi("b");
  graph.add_po(graph.and2(a, b));
  graph.add_po(graph.xor2(a, b));
  return graph;
}

TEST(PutOnTop, SingleCopyKeepsInterface) {
  const Aig base = make_balanced();
  const Aig stack = put_on_top(base, 1);
  EXPECT_EQ(stack.num_pis(), 2u);
  EXPECT_EQ(stack.num_pos(), 2u);
  EXPECT_EQ(stack.name(), "balanced_x1");
  // Functionally identical to the base.
  util::Rng rng(3);
  const std::uint64_t words[2] = {rng(), rng()};
  EXPECT_EQ(base.simulate_words(words), stack.simulate_words(words));
}

TEST(PutOnTop, BalancedStackComposes) {
  const Aig base = make_balanced();
  const Aig stack = put_on_top(base, 3);
  EXPECT_EQ(stack.num_pis(), 2u);
  EXPECT_EQ(stack.num_pos(), 2u);
  stack.check_invariants();

  // Reference: iterate the base function three times by hand.
  util::Rng rng(7);
  std::uint64_t w0 = rng(), w1 = rng();
  const std::uint64_t input[2] = {w0, w1};
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t words[2] = {w0, w1};
    const auto out = base.simulate_words(words);
    w0 = out[0];
    w1 = out[1];
  }
  const auto stacked_out = stack.simulate_words(input);
  EXPECT_EQ(stacked_out[0], w0);
  EXPECT_EQ(stacked_out[1], w1);
}

TEST(PutOnTop, MorePosThanPisCreatesExtraPos) {
  // 1 PI, 3 POs: each upper copy consumes one PO; two surplus POs per
  // level become stack POs.
  Aig base("wide_out");
  const Lit a = base.add_pi();
  base.add_po(lit_not(a));
  base.add_po(a);
  base.add_po(lit_not(a));
  const Aig stack = put_on_top(base, 4);
  EXPECT_EQ(stack.num_pis(), 1u);
  // 2 surplus POs per lower copy (3 copies below the top) + 3 top POs.
  EXPECT_EQ(stack.num_pos(), 3u * 2u + 3u);
  stack.check_invariants();
}

TEST(PutOnTop, MorePisThanPosCreatesExtraPis) {
  // 3 PIs, 1 PO: each upper copy gets 1 PO from below + 2 fresh PIs.
  Aig base("wide_in");
  const Lit a = base.add_pi();
  const Lit b = base.add_pi();
  const Lit c = base.add_pi();
  base.add_po(base.and2(a, base.and2(b, c)));
  const Aig stack = put_on_top(base, 5);
  EXPECT_EQ(stack.num_pis(), 3u + 4u * 2u);
  EXPECT_EQ(stack.num_pos(), 1u);
  stack.check_invariants();
}

TEST(PutOnTop, DepthGrowsWithCopies) {
  const Aig base = make_balanced();
  const Aig deep = put_on_top(base, 8);
  EXPECT_GE(deep.depth(), base.depth());
  EXPECT_GT(deep.num_ands(), base.num_ands());
}

TEST(PutOnTop, RejectsDegenerateInputs) {
  const Aig base = make_balanced();
  EXPECT_THROW(put_on_top(base, 0), std::invalid_argument);
  Aig no_pos("no_pos");
  no_pos.add_pi();
  EXPECT_THROW(put_on_top(no_pos, 2), std::invalid_argument);
}

}  // namespace
}  // namespace simgen::aig

// Reverse-simulation (RevS baseline) tests.
#include "simgen/reverse_sim.hpp"

#include <gtest/gtest.h>

#include <array>

#include "benchgen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::core {
namespace {

std::vector<bool> simulate_vector(const net::Network& network,
                                  const std::vector<TVal>& pi_values,
                                  std::span<const net::NodeId> probes,
                                  util::Rng& fill_rng) {
  sim::Simulator simulator(network);
  std::vector<sim::PatternWord> words(network.num_pis(), 0);
  for (std::size_t i = 0; i < network.num_pis(); ++i) {
    bool bit = false;
    switch (pi_values[i]) {
      case TVal::kZero: bit = false; break;
      case TVal::kOne: bit = true; break;
      case TVal::kUnknown: bit = fill_rng.flip(); break;
    }
    words[i] = bit ? ~sim::PatternWord{0} : 0;
  }
  simulator.simulate_word(words);
  std::vector<bool> out;
  for (const net::NodeId probe : probes) out.push_back(simulator.value(probe) & 1u);
  return out;
}

TEST(ReverseSim, SatisfiesBothTargetsOnSuccess) {
  benchgen::CircuitSpec spec;
  spec.name = "revs_prop";
  spec.num_pis = 12;
  spec.num_pos = 6;
  spec.num_gates = 150;
  const net::Network network = benchgen::generate_mapped(spec);

  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });
  ASSERT_GE(luts.size(), 2u);

  ReverseSimulator reverse(network, 21);
  util::Rng pick(23), fill(29);
  int successes = 0;
  for (int round = 0; round < 60; ++round) {
    const net::NodeId n1 = luts[pick.below(luts.size())];
    net::NodeId n2 = luts[pick.below(luts.size())];
    if (n1 == n2) continue;
    const Target ta{n1, true};
    const Target tb{n2, false};
    const ReverseSimResult result = reverse.generate(ta, tb);
    if (!result.success) continue;
    ++successes;
    const std::array<net::NodeId, 2> probes{n1, n2};
    const auto bits = simulate_vector(network, result.pi_values, probes, fill);
    EXPECT_TRUE(bits[0]) << "round " << round;
    EXPECT_FALSE(bits[1]) << "round " << round;
  }
  EXPECT_GT(successes, 0) << "reverse simulation never succeeded";
  EXPECT_EQ(reverse.stats().successes.value(), static_cast<std::uint64_t>(successes));
}

TEST(ReverseSim, ImpossiblePairAlwaysConflicts) {
  // x = and(a, b), y = nand(a, b): x=1 and y=1 cannot hold together.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId x = network.add_lut(f, tt::TruthTable::and_gate(2));
  const net::NodeId y = network.add_lut(f, tt::TruthTable::nand_gate(2));
  network.add_po(x);
  network.add_po(y);

  ReverseSimulator reverse(network, 31);
  for (int round = 0; round < 20; ++round) {
    const ReverseSimResult result =
        reverse.generate(Target{x, true}, Target{y, true});
    EXPECT_FALSE(result.success);
  }
  EXPECT_EQ(reverse.stats().conflicts.value(), 20u);
}

TEST(ReverseSim, SameNodeComplementaryGoldsFail) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const std::array<net::NodeId, 1> f{a};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::not_gate());
  network.add_po(g);
  ReverseSimulator reverse(network, 1);
  EXPECT_FALSE(reverse.generate(Target{g, true}, Target{g, false}).success);
  EXPECT_TRUE(reverse.generate(Target{g, true}, Target{g, true}).success);
}

TEST(ReverseSim, HandlesConstantFanins) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId one = network.add_constant(true);
  const std::array<net::NodeId, 2> f{one, a};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::and_gate(2));
  network.add_po(g);

  ReverseSimulator reverse(network, 3);
  const ReverseSimResult ok = reverse.generate(Target{g, true}, Target{g, true});
  ASSERT_TRUE(ok.success);
  EXPECT_EQ(ok.pi_values[0], TVal::kOne);  // a must be 1
}

TEST(ReverseSim, ProneToFailureWhereImplicationSucceeds) {
  // Statistical contrast on the paper's Figure 1 circuit: RevS must fail
  // on some attempts (when it guesses the (0,0) NAND row), demonstrating
  // the weakness SimGen fixes deterministically.
  net::Network network;
  const net::NodeId A = network.add_pi();
  const net::NodeId B = network.add_pi();
  const net::NodeId C = network.add_pi();
  const std::array<net::NodeId, 1> finv{B};
  const net::NodeId inv = network.add_lut(finv, tt::TruthTable::not_gate());
  const std::array<net::NodeId, 2> fx{A, B};
  const net::NodeId x = network.add_lut(
      fx, tt::TruthTable::projection(2, 0) & ~tt::TruthTable::projection(2, 1));
  const std::array<net::NodeId, 2> fy{inv, C};
  const net::NodeId y = network.add_lut(fy, tt::TruthTable::nand_gate(2));
  const std::array<net::NodeId, 2> fz{x, y};
  const net::NodeId z = network.add_lut(fz, tt::TruthTable::and_gate(2));
  network.add_po(z);

  ReverseSimulator reverse(network, 41);
  int failures = 0, successes = 0;
  for (int round = 0; round < 200; ++round) {
    const ReverseSimResult result =
        reverse.generate(Target{z, true}, Target{z, true});
    if (result.success)
      ++successes;
    else
      ++failures;
  }
  EXPECT_GT(failures, 0) << "RevS should sometimes pick the conflicting row";
  EXPECT_GT(successes, 0) << "RevS should sometimes get lucky";
}

}  // namespace
}  // namespace simgen::core

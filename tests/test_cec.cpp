// End-to-end CEC tests: miter construction, equivalent and mutated
// network pairs, counterexample validity.
#include "sweep/cec.hpp"

#include <gtest/gtest.h>

#include <array>

#include "aig/aig_to_network.hpp"
#include "benchgen/generator.hpp"
#include "mapping/lut_mapper.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::sweep {
namespace {

TEST(Miter, RejectsMismatchedInterfaces) {
  net::Network a, b;
  a.add_pi();
  a.add_po(a.pis()[0]);
  b.add_pi();
  b.add_pi();
  b.add_po(b.pis()[0]);
  EXPECT_THROW(make_miter(a, b), std::invalid_argument);
}

TEST(Miter, XorOutputsAreZeroForIdenticalNetworks) {
  net::Network a;
  const net::NodeId pa = a.add_pi();
  const net::NodeId pb = a.add_pi();
  const std::array<net::NodeId, 2> f{pa, pb};
  a.add_po(a.add_lut(f, tt::TruthTable::and_gate(2)));

  const Miter miter = make_miter(a, a);
  EXPECT_EQ(miter.network.num_pis(), 2u);
  EXPECT_EQ(miter.network.num_pos(), 1u);
  sim::Simulator sim(miter.network);
  for (std::uint64_t round = 0; round < 4; ++round) {
    sim.simulate_random_word(3, round);
    EXPECT_EQ(sim.value(miter.network.pos()[0]), sim::PatternWord{0});
  }
}

TEST(Cec, MappedNetworkEquivalentToDirectTranslation) {
  // The strongest integration check available without external tools:
  // LUT mapping and the direct AIG->2-LUT translation must be equivalent.
  benchgen::CircuitSpec spec;
  spec.name = "cec_equiv";
  spec.num_pis = 12;
  spec.num_pos = 6;
  spec.num_gates = 250;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network mapped = mapping::map_to_luts(graph);
  const net::Network direct = aig::to_network(graph);

  CecOptions options;
  options.random_rounds = 4;
  options.guided_iterations = 5;
  const CecResult result = check_equivalence(mapped, direct, options);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.outputs_proven, mapped.num_pos());
  EXPECT_GT(result.output_sat_calls, 0u);
}

TEST(Cec, DetectsSingleLutMutation) {
  benchgen::CircuitSpec spec;
  spec.name = "cec_mutant";
  spec.num_pis = 10;
  spec.num_pos = 5;
  spec.num_gates = 150;
  const net::Network original = benchgen::generate_mapped(spec);

  // Rebuild with one LUT function mutated (flip one truth-table bit).
  net::Network mutated(original.name() + "_mut");
  std::vector<net::NodeId> map(original.num_nodes());
  bool flipped = false;
  original.for_each_node([&](net::NodeId id) {
    const auto& node = original.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi:
        map[id] = mutated.add_pi(node.name);
        break;
      case net::NodeKind::kConstant:
        map[id] = mutated.add_constant(node.constant_value);
        break;
      case net::NodeKind::kPo:
        map[id] = mutated.add_po(map[node.fanins[0]], node.name);
        break;
      case net::NodeKind::kLut: {
        std::vector<net::NodeId> fanins;
        for (net::NodeId fanin : node.fanins) fanins.push_back(map[fanin]);
        tt::TruthTable function = node.function;
        if (!flipped && node.fanins.size() >= 2) {
          function.set_bit(1, !function.get_bit(1));
          flipped = true;
        }
        map[id] = mutated.add_lut(fanins, function, node.name);
        break;
      }
    }
  });
  ASSERT_TRUE(flipped);

  const CecResult result = check_equivalence(original, mutated, CecOptions{});
  ASSERT_FALSE(result.equivalent);
  ASSERT_EQ(result.counterexample.size(), original.num_pis());

  // Independent validation: the counterexample must make some PO differ.
  sim::Simulator sim_a(original), sim_b(mutated);
  std::vector<sim::PatternWord> words(original.num_pis(), 0);
  for (std::size_t i = 0; i < words.size(); ++i)
    if (result.counterexample[i]) words[i] = 1;
  sim_a.simulate_word(words);
  sim_b.simulate_word(words);
  bool differs = false;
  for (std::size_t i = 0; i < original.num_pos(); ++i)
    differs |= (sim_a.value(original.pos()[i]) & 1u) !=
               (sim_b.value(mutated.pos()[i]) & 1u);
  EXPECT_TRUE(differs);
}

TEST(Cec, RandomPrepassCatchesGrossDifferences) {
  // Networks differing on most inputs: random simulation alone should
  // find the counterexample (zero SAT calls).
  net::Network a;
  const net::NodeId pa = a.add_pi();
  const net::NodeId pb = a.add_pi();
  const std::array<net::NodeId, 2> fa{pa, pb};
  a.add_po(a.add_lut(fa, tt::TruthTable::and_gate(2)));
  net::Network b;
  const net::NodeId qa = b.add_pi();
  const net::NodeId qb = b.add_pi();
  const std::array<net::NodeId, 2> fb{qa, qb};
  b.add_po(b.add_lut(fb, tt::TruthTable::or_gate(2)));

  const CecResult result = check_equivalence(a, b, CecOptions{});
  EXPECT_FALSE(result.equivalent);
  EXPECT_EQ(result.output_sat_calls, 0u);
}

TEST(Cec, GuidedSimulationCanBeDisabled) {
  benchgen::CircuitSpec spec;
  spec.name = "cec_noguided";
  spec.num_gates = 120;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  CecOptions options;
  options.use_guided_simulation = false;
  options.sweep_internal_nodes = false;
  const CecResult result = check_equivalence(
      mapping::map_to_luts(graph), aig::to_network(graph), options);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.sweep_stats.sat_calls, 0u);
}

}  // namespace
}  // namespace simgen::sweep

namespace simgen::sweep {
namespace {

// Whole-stack fuzz: CEC's verdict must match exhaustive simulation on
// random circuit pairs — identical pairs, remapped pairs, and pairs with
// a random single-bit mutation (which may or may not change the function
// when it lands on a don't-care of the surrounding logic).
class CecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CecFuzz, VerdictMatchesExhaustiveSimulation) {
  util::Rng rng(GetParam() * 1009 + 5);
  benchgen::CircuitSpec spec;
  spec.name = "cec_fuzz_" + std::to_string(GetParam());
  spec.num_pis = 10;
  spec.num_pos = 4;
  spec.num_gates = 120;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network a = mapping::map_to_luts(graph);

  // Mutate a copy with probability 1/2 (bit flip in one random LUT).
  net::Network b("fuzz_b");
  std::vector<net::NodeId> map(a.num_nodes());
  const bool try_mutate = rng.flip();
  bool mutated = false;
  a.for_each_node([&](net::NodeId id) {
    const auto& node = a.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi: map[id] = b.add_pi(node.name); break;
      case net::NodeKind::kConstant:
        map[id] = b.add_constant(node.constant_value);
        break;
      case net::NodeKind::kPo: map[id] = b.add_po(map[node.fanins[0]]); break;
      case net::NodeKind::kLut: {
        std::vector<net::NodeId> fanins;
        for (const net::NodeId fanin : node.fanins) fanins.push_back(map[fanin]);
        tt::TruthTable function = node.function;
        if (try_mutate && !mutated && rng.chance(0.1)) {
          function.set_bit(rng.below(function.num_bits()),
                           !function.get_bit(rng.below(function.num_bits())));
          mutated = true;
        }
        map[id] = b.add_lut(fanins, function);
        break;
      }
    }
  });

  // Ground truth by exhaustive simulation (2^10 patterns).
  sim::Simulator sim_a(a), sim_b(b);
  bool truly_equivalent = true;
  for (std::size_t base = 0; base < 1024 && truly_equivalent; base += 64) {
    std::vector<sim::PatternWord> words(a.num_pis(), 0);
    for (std::size_t bit = 0; bit < 64; ++bit)
      for (std::size_t i = 0; i < a.num_pis(); ++i)
        if (((base + bit) >> i) & 1) words[i] |= sim::PatternWord{1} << bit;
    sim_a.simulate_word(words);
    sim_b.simulate_word(words);
    for (std::size_t i = 0; i < a.num_pos(); ++i)
      if (sim_a.value(a.pos()[i]) != sim_b.value(b.pos()[i]))
        truly_equivalent = false;
  }

  CecOptions options;
  options.seed = GetParam();
  const CecResult result = check_equivalence(a, b, options);
  ASSERT_EQ(result.equivalent, truly_equivalent)
      << "CEC verdict disagrees with exhaustive simulation";
  if (!result.equivalent) {
    // The witness must actually distinguish the networks.
    std::vector<sim::PatternWord> words(a.num_pis(), 0);
    for (std::size_t i = 0; i < a.num_pis(); ++i)
      if (result.counterexample[i]) words[i] = 1;
    sim_a.simulate_word(words);
    sim_b.simulate_word(words);
    bool differs = false;
    for (std::size_t i = 0; i < a.num_pos(); ++i)
      differs |= (sim_a.value(a.pos()[i]) ^ sim_b.value(b.pos()[i])) & 1u;
    EXPECT_TRUE(differs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CecFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

}  // namespace
}  // namespace simgen::sweep

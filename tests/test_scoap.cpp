// SCOAP controllability tests (classic gate rules recovered from the
// generalized LUT formulation) plus the SCOAP decision tie-break.
#include "network/scoap.hpp"

#include <gtest/gtest.h>

#include <array>

#include "benchgen/generator.hpp"
#include "simgen/decision.hpp"
#include "simgen/guided_sim.hpp"
#include "sim/random_sim.hpp"

namespace simgen::net {
namespace {

TEST(Scoap, PiAndConstantBaseCases) {
  Network network;
  const NodeId a = network.add_pi();
  const NodeId c0 = network.add_constant(false);
  const NodeId c1 = network.add_constant(true);
  const ScoapCosts costs = compute_scoap(network);
  EXPECT_EQ(costs.cc0[a], 1u);
  EXPECT_EQ(costs.cc1[a], 1u);
  EXPECT_EQ(costs.cc0[c0], 0u);
  EXPECT_EQ(costs.cc1[c0], ScoapCosts::kUncontrollable);
  EXPECT_EQ(costs.cc1[c1], 0u);
  EXPECT_EQ(costs.cc0[c1], ScoapCosts::kUncontrollable);
}

TEST(Scoap, ClassicGateRules) {
  // For and2 over PIs: CC1 = 1 + CC1(a) + CC1(b) = 3; CC0 = 1 + min = 2.
  // For or2: dual. For xor2: both cost 1 + 1 + 1 = 3.
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const std::array<NodeId, 2> f{a, b};
  const NodeId g_and = network.add_lut(f, tt::TruthTable::and_gate(2));
  const NodeId g_or = network.add_lut(f, tt::TruthTable::or_gate(2));
  const NodeId g_xor = network.add_lut(f, tt::TruthTable::xor_gate(2));
  const NodeId g_not_in = network.add_lut(std::array<NodeId, 1>{a},
                                          tt::TruthTable::not_gate());
  const ScoapCosts costs = compute_scoap(network);
  EXPECT_EQ(costs.cc1[g_and], 3u);
  EXPECT_EQ(costs.cc0[g_and], 2u);
  EXPECT_EQ(costs.cc1[g_or], 2u);
  EXPECT_EQ(costs.cc0[g_or], 3u);
  EXPECT_EQ(costs.cc1[g_xor], 3u);
  EXPECT_EQ(costs.cc0[g_xor], 3u);
  EXPECT_EQ(costs.cc1[g_not_in], 2u);  // 1 + CC0(a)
  EXPECT_EQ(costs.cc0[g_not_in], 2u);
}

TEST(Scoap, DeepChainsCostMore) {
  // A wide AND tree's CC1 grows with the number of inputs; its CC0 stays
  // near-constant (any single 0 suffices).
  Network network;
  std::vector<NodeId> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(network.add_pi());
  NodeId acc = pis[0];
  const auto and2 = tt::TruthTable::and_gate(2);
  for (int i = 1; i < 8; ++i) {
    const std::array<NodeId, 2> f{acc, pis[static_cast<std::size_t>(i)]};
    acc = network.add_lut(f, and2);
  }
  const ScoapCosts costs = compute_scoap(network);
  EXPECT_GE(costs.cc1[acc], 8u);  // needs all eight 1s
  EXPECT_LE(costs.cc0[acc], 9u);  // one 0 plus chain depth
  EXPECT_GT(costs.cc1[acc], costs.cc0[acc]);
}

TEST(Scoap, ConstantZeroLutIsUncontrollableToOne) {
  // A LUT whose *function* is constant 0 has an empty ON cover: CC1
  // saturates. (SCOAP is positional, like the classic metric: a LUT that
  // is only semantically constant through duplicate fanins is not
  // detected — that is the known optimism of SCOAP on reconvergence.)
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const std::array<NodeId, 2> f{a, b};
  const NodeId g = network.add_lut(f, tt::TruthTable::constant(2, false));
  const ScoapCosts costs = compute_scoap(network);
  EXPECT_EQ(costs.cc1[g], ScoapCosts::kUncontrollable);
  EXPECT_LT(costs.cc0[g], ScoapCosts::kUncontrollable);
}

TEST(Scoap, UncontrollableValuesNeverUnderflow) {
  // A LUT reading a constant: rows demanding the impossible value must
  // saturate, not wrap.
  Network network;
  const NodeId one = network.add_constant(true);
  const NodeId a = network.add_pi();
  const std::array<NodeId, 2> f{one, a};
  // g = !fanin0 & fanin1: CC1 demands fanin0 == 0 which is impossible.
  const NodeId g = network.add_lut(
      f, ~tt::TruthTable::projection(2, 0) & tt::TruthTable::projection(2, 1));
  const ScoapCosts costs = compute_scoap(network);
  EXPECT_GE(costs.cc1[g], ScoapCosts::kUncontrollable);
}

}  // namespace
}  // namespace simgen::net

namespace simgen::core {
namespace {

TEST(ScoapDecision, BonusPrefersCheapRows) {
  // g = (deep & a) | b: the row {b=1} is cheap, the row through the deep
  // AND chain is expensive — the SCOAP bonus must rank {--1}... here
  // fanins are (deep, a, b)? Build: g over (chain, b) as or2.
  net::Network network;
  std::vector<net::NodeId> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(network.add_pi());
  net::NodeId chain = pis[0];
  const auto and2 = tt::TruthTable::and_gate(2);
  for (int i = 1; i < 5; ++i) {
    const std::array<net::NodeId, 2> f{chain, pis[static_cast<std::size_t>(i)]};
    chain = network.add_lut(f, and2);
  }
  const std::array<net::NodeId, 2> fg{chain, pis[5]};
  const net::NodeId g = network.add_lut(fg, tt::TruthTable::or_gate(2));
  network.add_po(g);

  const net::ScoapCosts scoap = net::compute_scoap(network);
  Row cheap;   // {-1}: b=1
  cheap.cube.set_literal(1, true);
  cheap.output = true;
  Row costly;  // {1-}: chain=1
  costly.cube.set_literal(0, true);
  costly.output = true;
  EXPECT_GT(scoap_row_bonus(network, scoap, g, cheap),
            scoap_row_bonus(network, scoap, g, costly));
}

TEST(ScoapDecision, StrategyArmRunsEndToEnd) {
  benchgen::CircuitSpec spec;
  spec.name = "scoap_arm";
  spec.num_pis = 14;
  spec.num_pos = 8;
  spec.num_gates = 250;
  const net::Network network = benchgen::generate_mapped(spec);
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 1;
  sim::run_random_simulation(simulator, classes, random_options);
  const std::uint64_t before = classes.cost();

  GuidedSimOptions options;
  options.strategy = Strategy::kAiDcScoap;
  options.iterations = 10;
  const GuidedSimResult result =
      run_guided_simulation(simulator, classes, options);
  EXPECT_LE(classes.cost(), before);
  EXPECT_EQ(result.cost_per_iteration.size(), 10u);
  EXPECT_EQ(strategy_name(Strategy::kAiDcScoap), "AI+DC+SCOAP");
}

}  // namespace
}  // namespace simgen::core

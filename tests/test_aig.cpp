// Tests for the AIG: literal encoding, folding rules, structural hashing,
// derived connectives, simulation, and invariants.
#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace simgen::aig {
namespace {

TEST(Lit, EncodingRoundTrip) {
  const Lit lit = make_lit(7, true);
  EXPECT_EQ(lit_node(lit), 7u);
  EXPECT_TRUE(lit_complemented(lit));
  EXPECT_EQ(lit_not(lit), make_lit(7, false));
  EXPECT_EQ(kLitTrue, lit_not(kLitFalse));
}

TEST(Aig, ConstantFolding) {
  Aig graph;
  const Lit a = graph.add_pi();
  EXPECT_EQ(graph.and2(a, kLitFalse), kLitFalse);
  EXPECT_EQ(graph.and2(kLitFalse, a), kLitFalse);
  EXPECT_EQ(graph.and2(a, kLitTrue), a);
  EXPECT_EQ(graph.and2(a, a), a);
  EXPECT_EQ(graph.and2(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(graph.num_ands(), 0u);
}

TEST(Aig, StructuralHashing) {
  Aig graph;
  const Lit a = graph.add_pi();
  const Lit b = graph.add_pi();
  const Lit g1 = graph.and2(a, b);
  const Lit g2 = graph.and2(b, a);  // commuted: same node
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(graph.num_ands(), 1u);
  const Lit g3 = graph.and2(lit_not(a), b);  // different polarity: new node
  EXPECT_NE(g1, g3);
  EXPECT_EQ(graph.num_ands(), 2u);
}

TEST(Aig, PiAfterAndThrows) {
  Aig graph;
  const Lit a = graph.add_pi();
  const Lit b = graph.add_pi();
  graph.and2(a, b);
  EXPECT_THROW(graph.add_pi(), std::logic_error);
}

TEST(Aig, OutOfRangeLiteralThrows) {
  Aig graph;
  const Lit a = graph.add_pi();
  EXPECT_THROW(graph.and2(a, make_lit(99, false)), std::invalid_argument);
  EXPECT_THROW(graph.add_po(make_lit(99, false)), std::invalid_argument);
}

TEST(Aig, SimulateBasicGates) {
  Aig graph;
  const Lit a = graph.add_pi();
  const Lit b = graph.add_pi();
  graph.add_po(graph.and2(a, b), "and");
  graph.add_po(graph.or2(a, b), "or");
  graph.add_po(graph.xor2(a, b), "xor");
  graph.add_po(graph.nand2(a, b), "nand");
  graph.add_po(graph.nor2(a, b), "nor");
  graph.add_po(graph.xnor2(a, b), "xnor");

  // Pattern bits: a = 0101..., b = 0011... gives all four input combos.
  const std::uint64_t wa = 0xaaaaaaaaaaaaaaaaull;
  const std::uint64_t wb = 0xccccccccccccccccull;
  const std::uint64_t words[2] = {wa, wb};
  const auto out = graph.simulate_words(words);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], wa & wb);
  EXPECT_EQ(out[1], wa | wb);
  EXPECT_EQ(out[2], wa ^ wb);
  EXPECT_EQ(out[3], ~(wa & wb));
  EXPECT_EQ(out[4], ~(wa | wb));
  EXPECT_EQ(out[5], ~(wa ^ wb));
}

TEST(Aig, MuxAndMajority) {
  Aig graph;
  const Lit s = graph.add_pi();
  const Lit t = graph.add_pi();
  const Lit e = graph.add_pi();
  graph.add_po(graph.mux(s, t, e));
  graph.add_po(graph.maj3(s, t, e));
  util::Rng rng(5);
  const std::uint64_t words[3] = {rng(), rng(), rng()};
  const auto out = graph.simulate_words(words);
  EXPECT_EQ(out[0], (words[0] & words[1]) | (~words[0] & words[2]));
  EXPECT_EQ(out[1], (words[0] & words[1]) | (words[0] & words[2]) |
                        (words[1] & words[2]));
}

TEST(Aig, SimulateConstantPo) {
  Aig graph;
  graph.add_pi();
  graph.add_po(kLitTrue);
  graph.add_po(kLitFalse);
  const std::uint64_t words[1] = {0x1234u};
  const auto out = graph.simulate_words(words);
  EXPECT_EQ(out[0], ~0ull);
  EXPECT_EQ(out[1], 0ull);
}

TEST(Aig, SimulateWrongPiCountThrows) {
  Aig graph;
  graph.add_pi();
  graph.add_pi();
  const std::uint64_t one_word[1] = {0};
  EXPECT_THROW(graph.simulate_words(one_word), std::invalid_argument);
}

TEST(Aig, XorOfSelfIsFalse) {
  Aig graph;
  const Lit a = graph.add_pi();
  EXPECT_EQ(graph.xor2(a, a), kLitFalse);
  EXPECT_EQ(graph.xor2(a, lit_not(a)), kLitTrue);
}

TEST(Aig, InvariantsHoldOnRandomGraph) {
  Aig graph;
  util::Rng rng(17);
  std::vector<Lit> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(graph.add_pi());
  for (int i = 0; i < 200; ++i) {
    const Lit a = pool[rng.below(pool.size())];
    const Lit b = pool[rng.below(pool.size())];
    pool.push_back(graph.and2(rng.flip() ? lit_not(a) : a,
                              rng.flip() ? lit_not(b) : b));
  }
  graph.add_po(pool.back());
  graph.check_invariants();
  EXPECT_GT(graph.num_ands(), 0u);
  EXPECT_GT(graph.depth(), 0u);
}

TEST(Aig, LevelsAreConsistent) {
  Aig graph;
  const Lit a = graph.add_pi();
  const Lit b = graph.add_pi();
  const Lit g1 = graph.and2(a, b);
  const Lit g2 = graph.and2(g1, a);
  EXPECT_EQ(graph.level(lit_node(a)), 0u);
  EXPECT_EQ(graph.level(lit_node(g1)), 1u);
  EXPECT_EQ(graph.level(lit_node(g2)), 2u);
  graph.add_po(g2);
  EXPECT_EQ(graph.depth(), 2u);
}

}  // namespace
}  // namespace simgen::aig

// AIGER reader/writer tests: both formats, round trips, error handling.
#include "io/aiger.hpp"

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "util/rng.hpp"

namespace simgen::io {
namespace {

void expect_same_function(const aig::Aig& a, const aig::Aig& b, int rounds = 4) {
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  util::Rng rng(55);
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::uint64_t> words(a.num_pis());
    for (auto& w : words) w = rng();
    ASSERT_EQ(a.simulate_words(words), b.simulate_words(words));
  }
}

aig::Aig small_graph() {
  aig::Aig graph("small");
  const aig::Lit a = graph.add_pi();
  const aig::Lit b = graph.add_pi();
  const aig::Lit c = graph.add_pi();
  graph.add_po(graph.xor2(graph.and2(a, b), c));
  graph.add_po(aig::lit_not(graph.and2(b, c)));
  return graph;
}

TEST(Aiger, AsciiHeaderAndCounts) {
  const std::string text = write_aiger_string(small_graph(), /*binary=*/false);
  EXPECT_EQ(text.rfind("aag ", 0), 0u);
  const aig::Aig reparsed = read_aiger_string(text);
  EXPECT_EQ(reparsed.num_pis(), 3u);
  EXPECT_EQ(reparsed.num_pos(), 2u);
}

TEST(Aiger, AsciiRoundTrip) {
  const aig::Aig original = small_graph();
  const aig::Aig reparsed =
      read_aiger_string(write_aiger_string(original, /*binary=*/false));
  expect_same_function(original, reparsed);
}

TEST(Aiger, BinaryRoundTrip) {
  const aig::Aig original = small_graph();
  const aig::Aig reparsed =
      read_aiger_string(write_aiger_string(original, /*binary=*/true));
  expect_same_function(original, reparsed);
}

TEST(Aiger, ConstantOutputs) {
  aig::Aig graph;
  graph.add_pi();
  graph.add_po(aig::kLitTrue);
  graph.add_po(aig::kLitFalse);
  for (bool binary : {false, true}) {
    const aig::Aig reparsed = read_aiger_string(write_aiger_string(graph, binary));
    std::vector<std::uint64_t> words{0xdeadbeefull};
    const auto out = reparsed.simulate_words(words);
    EXPECT_EQ(out[0], ~0ull);
    EXPECT_EQ(out[1], 0ull);
  }
}

TEST(Aiger, GeneratedCircuitBothFormats) {
  benchgen::CircuitSpec spec;
  spec.name = "aiger_roundtrip";
  spec.num_gates = 600;
  const aig::Aig original = benchgen::generate_circuit(spec);
  for (bool binary : {false, true}) {
    const aig::Aig reparsed =
        read_aiger_string(write_aiger_string(original, binary));
    expect_same_function(original, reparsed, 8);
  }
}

TEST(Aiger, KnownAsciiExample) {
  // Standard and-gate example from the AIGER spec.
  const aig::Aig graph = read_aiger_string("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n");
  EXPECT_EQ(graph.num_pis(), 2u);
  EXPECT_EQ(graph.num_pos(), 1u);
  EXPECT_EQ(graph.num_ands(), 1u);
  std::vector<std::uint64_t> words{0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull};
  EXPECT_EQ(graph.simulate_words(words)[0], words[0] & words[1]);
}

TEST(Aiger, Errors) {
  EXPECT_THROW(read_aiger_string("xyz 1 1 0 0 0\n"), std::runtime_error);
  // Latches rejected.
  EXPECT_THROW(read_aiger_string("aag 3 1 1 1 0\n2\n4 2\n4\n"),
               std::runtime_error);
  // Truncated and section.
  EXPECT_THROW(read_aiger_string("aag 3 2 0 1 1\n2\n4\n6\n"),
               std::runtime_error);
  // rhs after lhs.
  EXPECT_THROW(read_aiger_string("aag 4 2 0 1 2\n2\n4\n6\n6 8 4\n8 2 4\n"),
               std::runtime_error);
  // Odd lhs.
  EXPECT_THROW(read_aiger_string("aag 3 2 0 1 1\n2\n4\n7\n7 2 4\n"),
               std::runtime_error);
}

TEST(Aiger, FileRoundTrip) {
  const aig::Aig original = small_graph();
  const std::string path = testing::TempDir() + "/simgen_test.aig";
  write_aiger_file(original, path, /*binary=*/true);
  const aig::Aig reparsed = read_aiger_file(path);
  expect_same_function(original, reparsed);
  EXPECT_THROW(read_aiger_file("/nonexistent/file.aig"), std::runtime_error);
}

}  // namespace
}  // namespace simgen::io

/// \file test_isop_prop.cpp
/// \brief Property tests for truth tables and ISOP extraction.
///
/// The fuzz harness trusts tt:: as ground truth (witness validation,
/// table mutation, shrinking all evaluate truth tables), so this file
/// pins the algebra down on bulk random inputs: 10k random tables across
/// 1-10 variables, checking that ISOP covers re-evaluate to exactly the
/// source function, that interval ISOP stays inside its bounds, and that
/// the cofactor/support identities hold.
#include <gtest/gtest.h>

#include <bit>

#include "tt/isop.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace simgen::tt {
namespace {

constexpr unsigned kMinVars = 1;
constexpr unsigned kMaxPropVars = 10;
constexpr unsigned kTablesPerWidth = 1000;  // 10 widths -> 10k tables

TruthTable random_table(unsigned num_vars, util::Rng& rng) {
  TruthTable table(num_vars);
  for (std::size_t w = 0; w < table.num_words(); ++w) {
    std::uint64_t word = rng();
    for (std::uint64_t bit = 0; bit < 64 && (w * 64 + bit) < table.num_bits();
         ++bit)
      table.set_bit(w * 64 + bit, (word >> bit) & 1u);
  }
  return table;
}

TEST(IsopProp, CoverReevaluatesToExactFunction) {
  util::Rng rng(0xC0FFEEull);
  for (unsigned n = kMinVars; n <= kMaxPropVars; ++n) {
    for (unsigned t = 0; t < kTablesPerWidth; ++t) {
      const TruthTable f = random_table(n, rng);
      const Cover cover = isop(f);
      ASSERT_EQ(cover.to_truth_table(n), f)
          << "isop cover does not re-evaluate to f (" << n << " vars)";
      // Every cube is an implicant: it never asserts 1 where f is 0.
      for (const Cube& cube : cover.cubes)
        ASSERT_TRUE(cube.to_truth_table(n).implies(f))
            << "cube " << cube.to_string(n) << " is not an implicant";
    }
  }
}

TEST(IsopProp, RowSetCoversAreExactComplements) {
  util::Rng rng(0xBEEFull);
  for (unsigned n = kMinVars; n <= kMaxPropVars; ++n) {
    for (unsigned t = 0; t < kTablesPerWidth / 4; ++t) {
      const TruthTable f = random_table(n, rng);
      const RowSet rows = compute_rows(f);
      ASSERT_EQ(rows.on.to_truth_table(n), f);
      ASSERT_EQ(rows.off.to_truth_table(n), ~f);
    }
  }
}

TEST(IsopProp, IntervalIsopStaysInsideItsBounds) {
  util::Rng rng(0xDECAFull);
  for (unsigned n = kMinVars; n <= kMaxPropVars; ++n) {
    for (unsigned t = 0; t < kTablesPerWidth / 4; ++t) {
      const TruthTable f = random_table(n, rng);
      const TruthTable dc = random_table(n, rng) & ~f;  // disjoint from on
      const Cover cover = isop(f, dc);
      const TruthTable realized = cover.to_truth_table(n);
      ASSERT_TRUE(f.implies(realized)) << "interval isop dropped ON minterms";
      ASSERT_TRUE(realized.implies(f | dc)) << "interval isop left [on, on|dc]";
    }
  }
}

TEST(IsopProp, CofactorAndSupportIdentities) {
  util::Rng rng(0xF00Dull);
  for (unsigned n = kMinVars; n <= kMaxPropVars; ++n) {
    for (unsigned t = 0; t < kTablesPerWidth / 4; ++t) {
      const TruthTable f = random_table(n, rng);
      std::uint32_t expected_support = 0;
      for (unsigned var = 0; var < n; ++var) {
        const TruthTable c0 = f.cofactor0(var);
        const TruthTable c1 = f.cofactor1(var);
        // Shannon expansion rebuilds the function exactly.
        const TruthTable x = TruthTable::projection(n, var);
        ASSERT_EQ((~x & c0) | (x & c1), f);
        // Cofactors keep num_vars but drop var from the support.
        ASSERT_FALSE(c0.depends_on(var));
        ASSERT_FALSE(c1.depends_on(var));
        // Each minterm value of a cofactor appears twice (both var
        // phases), so the ON-counts add to exactly twice f's.
        ASSERT_EQ(c0.count_ones() + c1.count_ones(), 2 * f.count_ones());
        // depends_on is exactly "the cofactors differ".
        ASSERT_EQ(f.depends_on(var), c0 != c1);
        if (f.depends_on(var)) expected_support |= 1u << var;
      }
      ASSERT_EQ(f.support_mask(), expected_support);
      ASSERT_EQ(f.support_size(),
                static_cast<unsigned>(std::popcount(expected_support)));
    }
  }
}

TEST(IsopProp, ConstantAndProjectionEdgeCases) {
  for (unsigned n = kMinVars; n <= kMaxPropVars; ++n) {
    ASSERT_TRUE(isop(TruthTable::constant(n, false)).empty());
    const Cover ones = isop(TruthTable::constant(n, true));
    ASSERT_EQ(ones.size(), 1u);
    ASSERT_EQ(ones.cubes[0].num_literals(), 0u);
    for (unsigned var = 0; var < n; ++var) {
      const Cover proj = isop(TruthTable::projection(n, var));
      ASSERT_EQ(proj.size(), 1u);
      ASSERT_EQ(proj.cubes[0].num_literals(), 1u);
      ASSERT_TRUE(proj.cubes[0].has_literal(var));
      ASSERT_TRUE(proj.cubes[0].literal_value(var));
    }
  }
}

}  // namespace
}  // namespace simgen::tt

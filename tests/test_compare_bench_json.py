#!/usr/bin/env python3
"""Unit tests for tools/compare_bench_json.py (ctest: tools.compare_bench).

Usage: test_compare_bench_json.py /path/to/compare_bench_json.py

The gate's whole point is failing loudly when it cannot do its job, so
most cases here are about the error paths: a missing baseline directory,
an empty one, and corrupt files must all exit nonzero with a diagnostic,
never silently pass.
"""
import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = None  # Set from argv in __main__.

CELL = {"benchmark": "alu4", "strategy": "simgen", "cost": 412,
        "sat_calls": 120, "proven": 37, "disproven": 5, "unresolved": 0,
        "sim_seconds": 0.4, "num_threads": 1}


def write_cell(directory, name="BENCH_alu4__simgen.json", **overrides):
    data = dict(CELL)
    data.update(overrides)
    path = pathlib.Path(directory) / name
    path.write_text(json.dumps(data))
    return path


def run_compare(baseline, candidate, *args):
    result = subprocess.run(
        [sys.executable, SCRIPT, str(baseline), str(candidate), *args],
        capture_output=True, text=True)
    return result.returncode, result.stdout + result.stderr


class CompareBenchJsonTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = pathlib.Path(self._tmp.name)
        self.baseline = root / "baseline"
        self.candidate = root / "candidate"
        self.baseline.mkdir()
        self.candidate.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def test_matching_directories_pass(self):
        write_cell(self.baseline)
        write_cell(self.candidate)
        code, output = run_compare(self.baseline, self.candidate)
        self.assertEqual(code, 0, output)
        self.assertIn("match the baseline", output)

    def test_missing_baseline_dir_fails_with_a_clear_message(self):
        code, output = run_compare(self.baseline / "nope", self.candidate)
        self.assertEqual(code, 1, output)
        self.assertIn("does not exist", output)

    def test_empty_baseline_dir_fails(self):
        # A gate whose baseline glob matches nothing must not "pass".
        write_cell(self.candidate)
        code, output = run_compare(self.baseline, self.candidate)
        self.assertEqual(code, 1, output)
        self.assertIn("no BENCH_", output)

    def test_corrupt_baseline_file_fails(self):
        path = write_cell(self.baseline)
        path.write_text("{not json")
        write_cell(self.candidate)
        code, output = run_compare(self.baseline, self.candidate)
        self.assertEqual(code, 1, output)
        self.assertIn("CORRUPT", output)

    def test_corrupt_candidate_file_fails(self):
        write_cell(self.baseline)
        write_cell(self.candidate).write_text("")
        code, output = run_compare(self.baseline, self.candidate)
        self.assertEqual(code, 1, output)
        self.assertIn("CORRUPT", output)

    def test_missing_candidate_file_fails(self):
        write_cell(self.baseline)
        code, output = run_compare(self.baseline, self.candidate)
        self.assertEqual(code, 1, output)
        self.assertIn("MISSING", output)

    def test_count_mismatch_fails(self):
        write_cell(self.baseline)
        write_cell(self.candidate, sat_calls=220)
        code, output = run_compare(self.baseline, self.candidate)
        self.assertEqual(code, 1, output)
        self.assertIn("MISMATCH", output)
        self.assertIn("sat_calls", output)

    def test_tolerance_allows_small_count_drift(self):
        write_cell(self.baseline)
        write_cell(self.candidate, sat_calls=121)
        code, output = run_compare(self.baseline, self.candidate, "--atol", "2")
        self.assertEqual(code, 0, output)

    def test_new_observability_fields_do_not_affect_the_gate(self):
        # PR-7 runs add wall_seconds / peak_rss_mb / pool_* fields; the
        # committed baselines predate them and must keep gating cleanly.
        write_cell(self.baseline)
        write_cell(self.candidate, wall_seconds=1.5, peak_rss_mb=91.2,
                   pool_tasks=966, pool_steal_successes=14,
                   pool_utilization=0.92, num_threads=4)
        code, output = run_compare(self.baseline, self.candidate)
        self.assertEqual(code, 0, output)
        self.assertIn("4 bench threads", output)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        raise SystemExit(
            "usage: test_compare_bench_json.py /path/to/compare_bench_json.py")
    SCRIPT = sys.argv.pop(1)
    unittest.main(verbosity=2)

// Implication-engine tests, including reconstructions of the paper's
// Figure 1 (implication rescues reverse simulation) and the advanced-
// implication behaviour of Section 4 / Figure 3.
#include "simgen/implication.hpp"

#include <gtest/gtest.h>

#include <array>

#include "benchgen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::core {
namespace {

// Paper Figure 1:  z = AND(x, y), x = A & !B, y = NAND(inv, C), inv = !B.
// Setting z=1 must propagate without conflict to A=1, B=0, C=0 once the
// inverter's forward implication (B=0 -> inv=1) is applied.
struct Figure1 {
  net::Network network;
  net::NodeId A, B, C, inv, x, y, z;

  Figure1() {
    A = network.add_pi("A");
    B = network.add_pi("B");
    C = network.add_pi("C");
    const std::array<net::NodeId, 1> finv{B};
    inv = network.add_lut(finv, tt::TruthTable::not_gate(), "inv");
    // x = A & !B.
    const std::array<net::NodeId, 2> fx{A, B};
    x = network.add_lut(
        fx, tt::TruthTable::projection(2, 0) & ~tt::TruthTable::projection(2, 1),
        "x");
    const std::array<net::NodeId, 2> fy{inv, C};
    y = network.add_lut(fy, tt::TruthTable::nand_gate(2), "y");
    const std::array<net::NodeId, 2> fz{x, y};
    z = network.add_lut(fz, tt::TruthTable::and_gate(2), "z");
    network.add_po(z, "D");
  }
};

TEST(Implication, PaperFigure1ResolvesWithoutConflict) {
  Figure1 fx;
  const RowDatabase rows(fx.network);
  NodeValues values(fx.network.num_nodes());
  values.assign(fx.z, TVal::kOne);

  const ImplicationOutcome outcome = run_implications(
      fx.network, rows, values, fx.z, ImplicationStrategy::kSimple);

  EXPECT_FALSE(outcome.conflict);
  EXPECT_EQ(values.get(fx.x), TVal::kOne);
  EXPECT_EQ(values.get(fx.y), TVal::kOne);
  EXPECT_EQ(values.get(fx.A), TVal::kOne);
  EXPECT_EQ(values.get(fx.B), TVal::kZero);
  // The rescue of Figure 1c: B=0 implies inv=1 forward, which in turn
  // implies C=0 backward through the NAND.
  EXPECT_EQ(values.get(fx.inv), TVal::kOne);
  EXPECT_EQ(values.get(fx.C), TVal::kZero);
}

TEST(Implication, NoneStrategyAssignsNothing) {
  Figure1 fx;
  const RowDatabase rows(fx.network);
  NodeValues values(fx.network.num_nodes());
  values.assign(fx.z, TVal::kOne);
  const ImplicationOutcome outcome = run_implications(
      fx.network, rows, values, fx.z, ImplicationStrategy::kNone);
  EXPECT_EQ(outcome.assignments, 0u);
  EXPECT_FALSE(values.is_assigned(fx.x));
}

TEST(Implication, ConflictDetectedAtContradictedNode) {
  // and(a, b) with a=0 and output 1: zero matching rows -> conflict.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::and_gate(2));
  network.add_po(g);

  const RowDatabase rows(network);
  NodeValues values(network.num_nodes());
  values.assign(a, TVal::kZero);
  values.assign(g, TVal::kOne);
  const ImplicationOutcome outcome =
      run_implications(network, rows, values, g, ImplicationStrategy::kSimple);
  EXPECT_TRUE(outcome.conflict);
  EXPECT_EQ(outcome.conflict_node, g);
}

TEST(Implication, AdvancedImpliesAgreedOutput) {
  // majority(a,b,c) with a=1, b=1: three ON rows match ({11-},{1-1},{-11}),
  // no OFF row does. Simple implication cannot fire (not unique); advanced
  // implication must set the output to 1 and leave c unknown (Def. 4.1).
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const net::NodeId c = network.add_pi();
  const std::array<net::NodeId, 3> f{a, b, c};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::majority3());
  network.add_po(g);
  const RowDatabase rows(network);

  {
    NodeValues values(network.num_nodes());
    values.assign(a, TVal::kOne);
    values.assign(b, TVal::kOne);
    const ImplicationOutcome outcome = run_implications(
        network, rows, values, a, ImplicationStrategy::kSimple);
    EXPECT_FALSE(outcome.conflict);
    EXPECT_FALSE(values.is_assigned(g)) << "simple must not fire on 3 rows";
  }
  {
    NodeValues values(network.num_nodes());
    values.assign(a, TVal::kOne);
    values.assign(b, TVal::kOne);
    const ImplicationOutcome outcome = run_implications(
        network, rows, values, a, ImplicationStrategy::kAdvanced);
    EXPECT_FALSE(outcome.conflict);
    EXPECT_EQ(values.get(g), TVal::kOne);
    EXPECT_FALSE(values.is_assigned(c)) << "disagreeing position stays X";
  }
}

TEST(Implication, AdvancedEnablesDownstreamChain) {
  // Figure 3's essence: the advanced-implied output enables a further
  // (simple) implication at the fanout AND gate.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const net::NodeId c = network.add_pi();
  const net::NodeId d = network.add_pi();
  const std::array<net::NodeId, 3> fm{a, b, c};
  const net::NodeId m = network.add_lut(fm, tt::TruthTable::majority3());
  const std::array<net::NodeId, 2> fg{m, d};
  const net::NodeId g = network.add_lut(fg, tt::TruthTable::and_gate(2));
  network.add_po(g);
  const RowDatabase rows(network);

  NodeValues values(network.num_nodes());
  values.assign(a, TVal::kOne);
  values.assign(b, TVal::kOne);
  values.assign(g, TVal::kZero);
  // Advanced: m=1 (majority with two ones); then and(m=1, d)=0 implies
  // d=0 — an opportunity invisible without the advanced step.
  const ImplicationOutcome outcome = run_implications(
      network, rows, values, a, ImplicationStrategy::kAdvanced);
  EXPECT_FALSE(outcome.conflict);
  EXPECT_EQ(values.get(m), TVal::kOne);
  EXPECT_EQ(values.get(d), TVal::kZero);
}

TEST(Implication, ForwardImplicationFromInputs) {
  // Inputs force the output: and(1, 1) -> 1 without touching the output
  // first (the generalization over backward-only reverse simulation).
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::and_gate(2));
  network.add_po(g);
  const RowDatabase rows(network);

  NodeValues values(network.num_nodes());
  values.assign(a, TVal::kOne);
  values.assign(b, TVal::kOne);
  run_implications(network, rows, values, a, ImplicationStrategy::kSimple);
  EXPECT_EQ(values.get(g), TVal::kOne);
}

TEST(Implication, MultiSeedOverloadCoversAllSeeds) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 1> f1{a};
  const net::NodeId g1 = network.add_lut(f1, tt::TruthTable::not_gate());
  const std::array<net::NodeId, 1> f2{b};
  const net::NodeId g2 = network.add_lut(f2, tt::TruthTable::not_gate());
  network.add_po(g1);
  network.add_po(g2);
  const RowDatabase rows(network);

  NodeValues values(network.num_nodes());
  values.assign(a, TVal::kOne);
  values.assign(b, TVal::kZero);
  const std::array<net::NodeId, 2> seeds{a, b};
  run_implications(network, rows, values, seeds, ImplicationStrategy::kSimple);
  EXPECT_EQ(values.get(g1), TVal::kZero);
  EXPECT_EQ(values.get(g2), TVal::kOne);
}

TEST(Implication, RespectsConstantNodes) {
  // A LUT fed by constant 1 behaves like a buffer of its other input.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId one = network.add_constant(true);
  const std::array<net::NodeId, 2> f{one, a};
  const net::NodeId g = network.add_lut(f, tt::TruthTable::and_gate(2));
  network.add_po(g);
  const RowDatabase rows(network);

  NodeValues values(network.num_nodes());
  values.assign(one, TVal::kOne);  // generator pre-assigns constants
  values.assign(g, TVal::kZero);
  run_implications(network, rows, values, g, ImplicationStrategy::kSimple);
  EXPECT_EQ(values.get(a), TVal::kZero);
}

}  // namespace
}  // namespace simgen::core

namespace simgen::core {
namespace {

// Soundness fuzz: every value assigned by (simple or advanced)
// implication must be semantically forced — in EVERY complete PI
// assignment whose simulation is consistent with the initial partial
// assignment, the implied node takes exactly the implied value.
class ImplicationSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImplicationSoundness, ImpliedValuesAreForced) {
  benchgen::CircuitSpec spec;
  spec.name = "impl_fuzz_" + std::to_string(GetParam());
  spec.num_pis = 8;
  spec.num_pos = 4;
  spec.num_gates = 60;
  const net::Network network = benchgen::generate_mapped(spec);
  const RowDatabase rows(network);
  sim::Simulator simulator(network);
  util::Rng rng(GetParam() * 31 + 7);

  // Exhaustive simulation table: value of every node on all 256 patterns.
  const std::size_t num_patterns = std::size_t{1} << network.num_pis();
  std::vector<std::vector<bool>> truth(num_patterns);
  for (std::size_t base = 0; base < num_patterns; base += 64) {
    std::vector<sim::PatternWord> words(network.num_pis(), 0);
    for (std::size_t b = 0; b < 64; ++b)
      for (std::size_t i = 0; i < network.num_pis(); ++i)
        if (((base + b) >> i) & 1)
          words[i] |= sim::PatternWord{1} << b;
    simulator.simulate_word(words);
    for (std::size_t b = 0; b < 64 && base + b < num_patterns; ++b) {
      auto& row = truth[base + b];
      row.resize(network.num_nodes());
      network.for_each_node(
          [&](net::NodeId id) { row[id] = simulator.value_bit(id, b); });
    }
  }

  for (int round = 0; round < 20; ++round) {
    // Build a consistent partial assignment by sampling node values from
    // one concrete pattern.
    const std::size_t seed_pattern = rng.below(num_patterns);
    NodeValues values(network.num_nodes());
    std::vector<net::NodeId> seeds;
    network.for_each_node([&](net::NodeId id) {
      if (network.is_po(id)) return;
      if (!rng.chance(0.2)) return;
      values.assign(id, tval_of(truth[seed_pattern][id]));
      seeds.push_back(id);
    });
    if (seeds.empty()) continue;
    const std::size_t premise_count = values.num_assigned();

    const auto strategy = (round & 1) ? ImplicationStrategy::kAdvanced
                                      : ImplicationStrategy::kSimple;
    const ImplicationOutcome outcome =
        run_implications(network, rows, values, seeds, strategy);
    ASSERT_FALSE(outcome.conflict)
        << "consistent assignment must not conflict";

    // Premises: the first `premise_count` trail entries. Conclusions:
    // everything after. Check each conclusion over all consistent
    // completions.
    const auto& trail = values.trail();
    for (std::size_t pattern = 0; pattern < num_patterns; ++pattern) {
      bool consistent = true;
      for (std::size_t i = 0; i < premise_count && consistent; ++i) {
        const net::NodeId node = trail[i];
        consistent = truth[pattern][node] == (values.get(node) == TVal::kOne);
      }
      if (!consistent) continue;
      for (std::size_t i = premise_count; i < trail.size(); ++i) {
        const net::NodeId node = trail[i];
        ASSERT_EQ(truth[pattern][node], values.get(node) == TVal::kOne)
            << "implied value not forced (round " << round << ", pattern "
            << pattern << ", node " << node << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationSoundness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace simgen::core

// Cross-ISA property tests for the wide simulation kernels: the scalar,
// AVX2, and AVX-512 kernels are instantiations of one bitwise template
// (see src/sim/sim_kernel_body.hpp), so they must produce byte-identical
// value blocks on every network — and EquivClasses::refine partitions
// must be invariant in both the kernel and the block width. Kernels the
// CPU (or the build) lacks are skipped gracefully, so the suite is green
// on any x86-64 and on non-x86 hosts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fuzz/gen.hpp"
#include "network/network.hpp"
#include "sim/eqclass.hpp"
#include "sim/pattern_block.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen::sim {
namespace {

constexpr std::size_t kBlockWords = 8;

std::vector<PatternWord> random_block(util::Rng& rng, std::size_t num_pis) {
  std::vector<PatternWord> block(num_pis * kBlockWords);
  for (auto& w : block) w = rng();
  return block;
}

class SimKernelEquivalence : public ::testing::TestWithParam<SimKernel> {
 protected:
  void SetUp() override {
    if (!sim_kernel_available(GetParam()))
      GTEST_SKIP() << sim_kernel_name(GetParam())
                   << " kernel unavailable on this CPU/build";
  }
};

// 1000 random K-LUT networks: the ISA kernel's whole value block must
// equal the scalar kernel's, bit for bit, including partially valid
// blocks (the kernels compute exactly `valid` words; lanes past the tail
// are never read or written).
TEST_P(SimKernelEquivalence, MatchesScalarOnRandomNetworks) {
  util::Rng rng(0xC0FFEEu);
  fuzz::GenProfile profile;
  for (int round = 0; round < 1000; ++round) {
    const fuzz::LutGenOptions options = fuzz::random_lut_options(rng, profile);
    const net::Network network = fuzz::random_lut_network(rng, options);
    const std::vector<PatternWord> block = random_block(rng, network.num_pis());
    const std::size_t valid = 1 + rng.below(kBlockWords);

    Simulator scalar(network, kBlockWords, SimKernel::kScalar);
    Simulator vector(network, kBlockWords, GetParam());
    ASSERT_EQ(vector.kernel(), GetParam());
    scalar.simulate_block(block, valid);
    vector.simulate_block(block, valid);
    bool mismatch = false;
    network.for_each_node([&](net::NodeId id) {
      for (std::size_t w = 0; w < valid && !mismatch; ++w) {
        if (scalar.value_word(id, w) != vector.value_word(id, w)) {
          mismatch = true;
          ADD_FAILURE() << "round " << round << " node " << id << " word " << w
                        << ": scalar " << scalar.value_word(id, w) << " vs "
                        << sim_kernel_name(GetParam()) << " "
                        << vector.value_word(id, w);
        }
      }
    });
    ASSERT_FALSE(mismatch) << "first divergence at round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Isas, SimKernelEquivalence,
                         ::testing::Values(SimKernel::kAvx2,
                                           SimKernel::kAvx512),
                         [](const auto& param_info) {
                           return std::string(sim_kernel_name(param_info.param));
                         });

std::vector<std::vector<net::NodeId>> partition_after_random_sim(
    const net::Network& network, SimKernel kernel, std::size_t block_words,
    std::size_t rounds) {
  Simulator simulator(network, block_words, kernel);
  EquivClasses classes = EquivClasses::over_luts(network);
  std::size_t round = 0;
  while (round < rounds) {
    const std::size_t chunk = std::min(block_words, rounds - round);
    simulator.simulate_random_block(31, round, chunk);
    for (std::size_t w = 0; w < chunk; ++w) classes.refine_word(simulator, w);
    round += chunk;
  }
  std::vector<std::vector<net::NodeId>> partition;
  for (std::size_t c = 0; c < classes.num_classes(); ++c) {
    const auto members = classes.class_members(ClassId{c});
    partition.emplace_back(members.begin(), members.end());
  }
  return partition;
}

// The refinement partition must be a function of (network, seed, round
// count) alone — never of the kernel or the block width. This is the
// width-sweep oracle's unit-test face.
TEST(SimKernelPartitions, RefineIsKernelAndWidthInvariant) {
  util::Rng rng(0xBEEFu);
  fuzz::GenProfile profile;
  for (int round = 0; round < 50; ++round) {
    const fuzz::LutGenOptions options = fuzz::random_lut_options(rng, profile);
    const net::Network network = fuzz::random_lut_network(rng, options);
    const auto baseline =
        partition_after_random_sim(network, SimKernel::kScalar, 1, 13);
    for (const SimKernel kernel :
         {SimKernel::kScalar, SimKernel::kAvx2, SimKernel::kAvx512}) {
      if (!sim_kernel_available(kernel)) continue;
      for (const std::size_t width : {std::size_t{1}, std::size_t{3},
                                      std::size_t{8}}) {
        const auto partition =
            partition_after_random_sim(network, kernel, width, 13);
        ASSERT_EQ(partition, baseline)
            << "partition diverged: kernel " << sim_kernel_name(kernel)
            << " width " << width << " round " << round;
      }
    }
  }
}

// ScopedSimConfig must swap the process defaults in and restore them on
// scope exit, including the unavailable-kernel fallback path.
TEST(SimKernelConfig, ScopedConfigRestoresDefaults) {
  const SimKernel before_kernel = default_sim_kernel();
  const std::size_t before_words = default_block_words();
  {
    ScopedSimConfig scoped(SimKernel::kScalar, 3);
    EXPECT_EQ(default_sim_kernel(), SimKernel::kScalar);
    EXPECT_EQ(default_block_words(), 3u);
    const net::Network empty;
    EXPECT_EQ(Simulator(empty).kernel(), SimKernel::kScalar);
    EXPECT_EQ(Simulator(empty).block_words(), 3u);
  }
  EXPECT_EQ(default_sim_kernel(), before_kernel);
  EXPECT_EQ(default_block_words(), before_words);
}

}  // namespace
}  // namespace simgen::sim

// Parallel sweeping tests: thread-pool semantics, determinism of the
// parallel engine across thread counts, the conflict-budget bugfixes
// (solver conflict-path check, separate output-proof budget, unresolved
// CEC verdicts), and the fuzz campaign's cross-engine leg.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "aig/aig_to_network.hpp"
#include "benchgen/generator.hpp"
#include "fuzz/campaign.hpp"
#include "mapping/lut_mapper.hpp"
#include "obs/inspect.hpp"
#include "obs/journal.hpp"
#include "sat/solver.hpp"
#include "sim/random_sim.hpp"
#include "sim/simulator.hpp"
#include "sweep/cec.hpp"
#include "sweep/sweeper.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace simgen {
namespace {

// ---------------------------------------------------------------------------
// Thread pool

TEST(ThreadPool, ResolvesThreadCounts) {
  EXPECT_EQ(util::resolve_num_threads(1), 1u);
  EXPECT_EQ(util::resolve_num_threads(7), 7u);
  EXPECT_GE(util::resolve_num_threads(0), 1u) << "0 = auto, never zero";
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run_tasks(kTasks, [&](std::size_t task, unsigned worker) {
    ASSERT_LT(worker, pool.num_threads());
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  util::ThreadPool pool(2);
  bool ran = false;
  pool.run_tasks(0, [&](std::size_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusesWorkersAcrossBatches) {
  util::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 20; ++batch)
    pool.run_tasks(50, [&](std::size_t, unsigned) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 20u * 50u);
}

TEST(ThreadPool, ConsecutiveBatchesNeverRunAStaleFunction) {
  // Regression: a worker that woke for batch N but was descheduled before
  // its first pop could outlive run_tasks(N) (the other workers drain the
  // batch), then pop batch N+1's tasks and invoke the destroyed batch-N
  // std::function — use-after-free plus tasks run with the wrong body.
  // Hammer the window: an oversubscribed pool (so workers are frequently
  // descheduled right after waking), many consecutive tiny batches, and
  // two alternating lambda shapes with different capture layouts — if the
  // consecutive std::function temporaries reused the same stack slot with
  // the same layout, a stale call could accidentally look correct. A
  // stale-function invocation stamps the wrong id or corrupts the pending
  // count (run_tasks returns with slots unset).
  util::ThreadPool pool(32);
  constexpr int kBatches = 4000;
  constexpr std::size_t kTasks = 3;
  std::array<std::atomic<int>, kTasks> slot{};
  for (int batch = 0; batch < kBatches; ++batch) {
    for (auto& s : slot) s.store(-1, std::memory_order_relaxed);
    if (batch % 2 == 0) {
      pool.run_tasks(kTasks, [&slot, batch](std::size_t task, unsigned) {
        slot[task].store(batch, std::memory_order_relaxed);
      });
    } else {
      const int copy0 = batch, copy1 = batch;
      pool.run_tasks(kTasks,
                     [&slot, copy0, copy1](std::size_t task, unsigned) {
                       slot[task].store(copy0 == copy1 ? copy0 : -2,
                                        std::memory_order_relaxed);
                     });
    }
    for (std::size_t task = 0; task < kTasks; ++task)
      ASSERT_EQ(slot[task].load(std::memory_order_relaxed), batch)
          << "batch " << batch << " task " << task
          << " ran a stale or missing function";
  }
}

TEST(ThreadPool, PropagatesTheLowestFailingTask) {
  // Several tasks throw; the batch must rethrow the exception of the
  // lowest task index so failures are deterministic under any schedule.
  util::ThreadPool pool(4);
  try {
    pool.run_tasks(200, [](std::size_t task, unsigned) {
      if (task == 17 || task == 42 || task == 170)
        throw std::runtime_error("task " + std::to_string(task));
    });
    FAIL() << "batch with throwing tasks must rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 17");
  }
  // The pool survives a failed batch.
  std::atomic<int> count{0};
  pool.run_tasks(8, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

// ---------------------------------------------------------------------------
// Parallel sweep determinism

net::Network parallel_bench(unsigned num_gates = 260) {
  benchgen::CircuitSpec spec;
  spec.name = "parallel_sweep";
  spec.num_pis = 14;
  spec.num_pos = 8;
  spec.num_gates = num_gates;
  spec.redundancy = 0.12;
  return benchgen::generate_mapped(spec);
}

sweep::SweepResult run_sweep(const net::Network& network,
                             unsigned num_threads) {
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 4;
  run_random_simulation(simulator, classes, random_options);
  sweep::SweepOptions options;
  options.num_threads = num_threads;
  sweep::Sweeper sweeper(network, options);
  sweep::SweepResult result = sweeper.run(classes, simulator);
  EXPECT_TRUE(classes.fully_refined());
  return result;
}

using Pairs = std::vector<std::pair<net::NodeId, net::NodeId>>;

Pairs sorted_pairs(const sweep::SweepResult& result) {
  Pairs pairs = result.proven_pairs;
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(ParallelSweep, ProvenPairsMatchTheSequentialEngine) {
  // With an unlimited conflict budget the set of proven merges is a
  // function of the circuit alone: simulation never splits a truly
  // equivalent pair, so every engine must converge on the same merges.
  const net::Network network = parallel_bench();
  const sweep::SweepResult seq = run_sweep(network, 1);
  const sweep::SweepResult par = run_sweep(network, 2);
  EXPECT_EQ(seq.unresolved, 0u);
  EXPECT_EQ(par.unresolved, 0u);
  EXPECT_EQ(sorted_pairs(seq), sorted_pairs(par));
  EXPECT_EQ(seq.proven_equivalent, par.proven_equivalent);
}

TEST(ParallelSweep, IsThreadCountInvariant) {
  // Among parallel runs the *full* result — including the schedule-shaped
  // counters — is identical for every thread count >= 2: task content and
  // round snapshots depend only on the seed, never on the interleaving.
  const net::Network network = parallel_bench();
  const sweep::SweepResult two = run_sweep(network, 2);
  const sweep::SweepResult eight = run_sweep(network, 8);
  EXPECT_EQ(two.sat_calls, eight.sat_calls);
  EXPECT_EQ(two.proven_equivalent, eight.proven_equivalent);
  EXPECT_EQ(two.disproven, eight.disproven);
  EXPECT_EQ(two.unresolved, eight.unresolved);
  EXPECT_EQ(two.resimulations, eight.resimulations);
  EXPECT_EQ(two.proven_pairs, eight.proven_pairs)
      << "even the merge order must match";
}

TEST(ParallelSweep, ProvenPairsAreSound) {
  const net::Network network = parallel_bench();
  const sweep::SweepResult result = run_sweep(network, 4);
  sim::Simulator simulator(network);
  for (std::uint64_t round = 0; round < 32; ++round) {
    simulator.simulate_random_word(5, round);
    for (const auto& [x, y] : result.proven_pairs)
      ASSERT_EQ(simulator.value(x), simulator.value(y))
          << "proven pair disagrees under simulation";
  }
}

// ---------------------------------------------------------------------------
// Parallel CEC

TEST(ParallelCec, VerdictsMatchAcrossThreadCounts) {
  benchgen::CircuitSpec spec;
  spec.name = "parallel_cec";
  spec.num_pis = 12;
  spec.num_pos = 6;
  spec.num_gates = 200;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network a = mapping::map_to_luts(graph);
  const net::Network b = aig::to_network(graph);

  sweep::CecOptions options;
  options.num_threads = 1;
  const sweep::CecResult seq = sweep::check_equivalence(a, b, options);
  options.num_threads = 2;
  const sweep::CecResult two = sweep::check_equivalence(a, b, options);
  options.num_threads = 8;
  const sweep::CecResult eight = sweep::check_equivalence(a, b, options);

  EXPECT_TRUE(seq.equivalent);
  EXPECT_TRUE(two.equivalent);
  EXPECT_TRUE(eight.equivalent);
  EXPECT_EQ(seq.outputs_proven, two.outputs_proven);
  EXPECT_EQ(two.sweep_stats.sat_calls, eight.sweep_stats.sat_calls);
  EXPECT_EQ(two.sweep_stats.proven_equivalent,
            eight.sweep_stats.proven_equivalent);
  EXPECT_EQ(two.output_sat_calls, eight.output_sat_calls);
}

TEST(ParallelCec, CertifiesEveryUnsatVerdict) {
  benchgen::CircuitSpec spec;
  spec.name = "parallel_certify";
  spec.num_pis = 10;
  spec.num_pos = 5;
  spec.num_gates = 150;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const net::Network a = mapping::map_to_luts(graph);
  const net::Network b = aig::to_network(graph);

  sweep::CecOptions options;
  options.certify = true;
  options.num_threads = 2;
  const sweep::CecResult result = sweep::check_equivalence(a, b, options);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.sweep_stats.certified_unsat,
            result.sweep_stats.proven_equivalent);
  EXPECT_EQ(result.certified_outputs, result.outputs_proven);
}

TEST(ParallelCec, FindsCounterexamplesWithAnyThreadCount) {
  // One truth-table bit flipped on a PO driver under the all-zero input:
  // all engines must find and verify a counterexample.
  const net::Network a = parallel_bench(120);
  sim::Simulator probe(a);
  probe.simulate_word(std::vector<sim::PatternWord>(a.num_pis(), 0));
  net::NodeId victim = net::kNullNode;
  unsigned minterm = 0;
  for (const net::NodeId po : a.pos()) {
    const net::NodeId driver = a.fanins(po)[0];
    if (!a.is_lut(driver)) continue;
    victim = driver;
    const auto fanins = a.fanins(driver);
    for (std::size_t i = 0; i < fanins.size(); ++i)
      minterm |= static_cast<unsigned>(probe.value(fanins[i]) & 1u) << i;
    break;
  }
  ASSERT_NE(victim, net::kNullNode);

  net::Network b("mutant");
  std::vector<net::NodeId> map(a.num_nodes());
  a.for_each_node([&](net::NodeId id) {
    const auto& node = a.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi: map[id] = b.add_pi(node.name); break;
      case net::NodeKind::kConstant:
        map[id] = b.add_constant(node.constant_value);
        break;
      case net::NodeKind::kPo: map[id] = b.add_po(map[node.fanins[0]]); break;
      case net::NodeKind::kLut: {
        std::vector<net::NodeId> fanins;
        for (net::NodeId fanin : node.fanins) fanins.push_back(map[fanin]);
        tt::TruthTable function = node.function;
        if (id == victim) function.set_bit(minterm, !function.get_bit(minterm));
        map[id] = b.add_lut(fanins, function);
        break;
      }
    }
  });

  for (const unsigned threads : {1u, 2u, 8u}) {
    sweep::CecOptions options;
    options.num_threads = threads;
    const sweep::CecResult result = sweep::check_equivalence(a, b, options);
    EXPECT_FALSE(result.equivalent) << threads << " threads";
    EXPECT_FALSE(result.undecided) << threads << " threads";
    ASSERT_EQ(result.counterexample.size(), a.num_pis());
  }
}

// ---------------------------------------------------------------------------
// Conflict-budget bugfixes

/// PHP(n+1, n): classically hard UNSAT, no short proofs.
void encode_pigeonhole(sat::Solver& solver, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<sat::Var>> slot(pigeons,
                                          std::vector<sat::Var>(holes));
  for (auto& row : slot)
    for (auto& var : row) var = solver.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(sat::pos(slot[p][h]));
    solver.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        solver.add_clause({sat::neg(slot[p1][h]), sat::neg(slot[p2][h])});
}

TEST(ConflictBudget, SolverStopsWithinLimitPlusOne) {
  // Regression: the budget check used to sit only on the no-conflict
  // path, so a chain of consecutive conflicts could overshoot the limit
  // unboundedly. A hard instance must now stop within limit + 1.
  sat::Solver solver;
  encode_pigeonhole(solver, 8);
  const std::uint64_t limit = 5;
  solver.set_conflict_limit(limit);
  const std::uint64_t before = solver.stats().conflicts.value();
  EXPECT_EQ(solver.solve(), sat::Result::kUnknown);
  const std::uint64_t spent = solver.stats().conflicts.value() - before;
  EXPECT_GE(spent, limit);
  EXPECT_LE(spent, limit + 1);
}

/// Two structurally different xor trees over the same 10 inputs: an
/// equivalent pair whose miter needs many conflicts to refute.
net::Network xor_tree_pair() {
  net::Network network;
  std::vector<net::NodeId> pis;
  for (int i = 0; i < 10; ++i) pis.push_back(network.add_pi());
  const auto xor2 = tt::TruthTable::xor_gate(2);
  net::NodeId left = pis[0];
  for (int i = 1; i < 10; ++i) {
    const std::array<net::NodeId, 2> f{left, pis[i]};
    left = network.add_lut(f, xor2);
  }
  net::NodeId right = pis[9];
  for (int i = 8; i >= 0; --i) {
    const std::array<net::NodeId, 2> f{right, pis[i]};
    right = network.add_lut(f, xor2);
  }
  network.add_po(left);
  network.add_po(right);
  return network;
}

/// The two xor trees as separate single-output networks, so CEC must
/// prove the hard xor miter as an output proof.
std::pair<net::Network, net::Network> xor_tree_networks() {
  net::Network a;
  net::Network b;
  std::vector<net::NodeId> pa;
  std::vector<net::NodeId> pb;
  for (int i = 0; i < 10; ++i) {
    pa.push_back(a.add_pi());
    pb.push_back(b.add_pi());
  }
  const auto xor2 = tt::TruthTable::xor_gate(2);
  net::NodeId left = pa[0];
  for (int i = 1; i < 10; ++i) {
    const std::array<net::NodeId, 2> f{left, pa[i]};
    left = a.add_lut(f, xor2);
  }
  net::NodeId right = pb[9];
  for (int i = 8; i >= 0; --i) {
    const std::array<net::NodeId, 2> f{right, pb[i]};
    right = b.add_lut(f, xor2);
  }
  a.add_po(left);
  b.add_po(right);
  return {std::move(a), std::move(b)};
}

sweep::CecOptions hard_output_proof_options() {
  // Disable everything that could prove the pair before the final output
  // proofs: the xor miter goes to the solver monolithically.
  sweep::CecOptions options;
  options.random_rounds = 0;
  options.use_guided_simulation = false;
  options.sweep_internal_nodes = false;
  return options;
}

TEST(ConflictBudget, LimitedOutputProofReturnsUndecided) {
  // Regression: a conflict-limited output proof used to throw; it must
  // report a proper unresolved verdict instead.
  const auto [a, b] = xor_tree_networks();
  sweep::CecOptions options = hard_output_proof_options();
  options.sweep.output_proof_conflict_limit = 1;
  const sweep::CecResult result = sweep::check_equivalence(a, b, options);
  EXPECT_FALSE(result.equivalent) << "undecided must read as not-proven";
  EXPECT_TRUE(result.undecided);
  EXPECT_GE(result.unresolved_outputs, 1u);
  EXPECT_TRUE(result.counterexample.empty());
}

TEST(ConflictBudget, ParallelLimitedOutputProofReturnsUndecided) {
  const auto [a, b] = xor_tree_networks();
  sweep::CecOptions options = hard_output_proof_options();
  options.sweep.output_proof_conflict_limit = 1;
  options.num_threads = 2;
  const sweep::CecResult result = sweep::check_equivalence(a, b, options);
  EXPECT_TRUE(result.undecided);
  EXPECT_GE(result.unresolved_outputs, 1u);
}

TEST(ConflictBudget, OutputProofsHaveTheirOwnBudget) {
  // Regression: the pair budget used to leak into the output proofs. A
  // tight pair budget with the (unlimited) default output budget must
  // still decide the hard pair EQUIVALENT.
  const auto [a, b] = xor_tree_networks();
  sweep::CecOptions options = hard_output_proof_options();
  options.sweep.conflict_limit = 1;
  const sweep::CecResult result = sweep::check_equivalence(a, b, options);
  EXPECT_TRUE(result.equivalent);
  EXPECT_FALSE(result.undecided);
  EXPECT_EQ(result.unresolved_outputs, 0u);
}

TEST(ConflictBudget, SweeperDropsLimitedPairsWithoutThrowing) {
  // The pair budget inside the parallel engine: conflict-limited pairs
  // are dropped and counted, never fatal.
  const net::Network network = xor_tree_pair();
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 4;
  run_random_simulation(simulator, classes, random_options);

  sweep::SweepOptions options;
  options.conflict_limit = 1;
  options.num_threads = 2;
  sweep::Sweeper sweeper(network, options);
  const sweep::SweepResult result = sweeper.run(classes, simulator);
  EXPECT_TRUE(classes.fully_refined());
  EXPECT_GE(result.unresolved, 1u);
}

#ifndef SIMGEN_NO_TELEMETRY
TEST(ConflictBudget, UndecidedRunsJournalARunEndEvent) {
  const std::string path =
      ::testing::TempDir() + "/parallel_undecided.jrnl";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::Journal::instance().open(path));
  const auto [a, b] = xor_tree_networks();
  sweep::CecOptions options = hard_output_proof_options();
  options.sweep.output_proof_conflict_limit = 1;
  const sweep::CecResult result = sweep::check_equivalence(a, b, options);
  obs::Journal::instance().close();
  ASSERT_TRUE(result.undecided);

  std::vector<obs::JournalEvent> events;
  std::string error;
  ASSERT_TRUE(obs::read_journal_file(path, events, &error)) << error;
  const auto run_end =
      std::find_if(events.begin(), events.end(), [](const auto& event) {
        return event.kind == obs::EventKind::kRunEnd;
      });
  ASSERT_NE(run_end, events.end());
  EXPECT_EQ(run_end->code, 2u) << "run-end outcome 2 = undecided";
  EXPECT_EQ(run_end->v1, result.unresolved_outputs);
  std::remove(path.c_str());
}
// Runs the parallel sweep with the journal capturing scheduler profiling
// events and returns the aggregated report.
obs::JournalReport profiled_sweep_report(const net::Network& network,
                                         unsigned num_threads) {
  const std::string path = ::testing::TempDir() + "/profiled_sweep_" +
                           std::to_string(num_threads) + ".jrnl";
  std::remove(path.c_str());
  EXPECT_TRUE(obs::Journal::instance().open(path));
  run_sweep(network, num_threads);
  obs::Journal::instance().close();

  std::vector<obs::JournalEvent> events;
  std::string error;
  EXPECT_TRUE(obs::read_journal_file(path, events, &error)) << error;
  std::remove(path.c_str());
  return obs::build_report(events, /*truncated=*/false);
}

TEST(PoolProfiling, JournalTotalsAreThreadCountInvariant) {
  // Scheduler profiling is pure observation: with it enabled, the
  // engine-level journal totals still depend only on the circuit, never
  // on the worker count or the interleaving. Only the scheduler's own
  // shape (number of worker-stats lanes) may differ.
  const net::Network network = parallel_bench();
  const obs::JournalReport two = profiled_sweep_report(network, 2);
  const obs::JournalReport four = profiled_sweep_report(network, 4);

  EXPECT_EQ(two.sat_calls, four.sat_calls);
  EXPECT_EQ(two.sat_unsat, four.sat_unsat);
  EXPECT_EQ(two.class_merged, four.class_merged);
  EXPECT_EQ(two.certified_ok, four.certified_ok);
  EXPECT_EQ(two.certified_fail, four.certified_fail);
  EXPECT_EQ(two.task_runs, four.task_runs)
      << "every SAT task must journal exactly one kTaskRun at any width";

  // The profiling layer itself scales with the pool width.
  EXPECT_EQ(two.worker_stats, 2u);
  EXPECT_EQ(four.worker_stats, 4u);
  EXPECT_EQ(two.lanes.size(), 2u);
  EXPECT_EQ(four.lanes.size(), 4u);
  std::uint64_t lane_tasks = 0;
  for (const auto& [worker, lane] : four.lanes) {
    EXPECT_LT(worker, 4u);
    lane_tasks += lane.tasks_run;
  }
  EXPECT_EQ(lane_tasks, four.task_runs)
      << "every task run must land on exactly one worker lane";
}

TEST(SatIntrospection, JournalTotalsAreThreadCountInvariant) {
  // The format-2 solver-introspection events come from cone-local
  // solvers whose solves are pure functions of their task, so every
  // introspection total — restarts, reductions, learnt/LBD rollups,
  // fingerprints — depends only on the circuit, never on pool width or
  // interleaving.
  const net::Network network = parallel_bench();
  const obs::JournalReport two = profiled_sweep_report(network, 2);
  const obs::JournalReport four = profiled_sweep_report(network, 4);

  EXPECT_GT(two.cone_fingerprints, 0u);
  EXPECT_EQ(two.cone_fingerprints, four.cone_fingerprints);
  EXPECT_EQ(two.solver_solve_stats, four.solver_solve_stats);
  EXPECT_EQ(two.solver_restarts, four.solver_restarts);
  EXPECT_EQ(two.solver_reduces, four.solver_reduces);
  EXPECT_EQ(two.solver_budget_hits, four.solver_budget_hits);
  EXPECT_EQ(two.reduce_deleted, four.reduce_deleted);
  EXPECT_EQ(two.conflicts, four.conflicts);
  EXPECT_EQ(two.learned, four.learned);
  EXPECT_EQ(two.lbd_count, four.lbd_count);
  EXPECT_EQ(two.lbd_sum, four.lbd_sum);
  EXPECT_EQ(two.lbd_max, four.lbd_max);

  // One fingerprint and one rollup bracket every solve at any width.
  EXPECT_EQ(two.cone_fingerprints, two.sat_calls);
  EXPECT_EQ(two.solver_solve_stats, two.sat_calls);
  for (const obs::SatCallRecord& call : four.calls) {
    EXPECT_TRUE(call.has_fingerprint);
    EXPECT_TRUE(call.has_solve_stats);
  }
}
#endif  // SIMGEN_NO_TELEMETRY

// ---------------------------------------------------------------------------
// Fuzz cross-check leg

TEST(ParallelFuzz, CampaignVerdictLogMatchesSingleThread) {
  fuzz::CampaignOptions options;
  options.iterations = 2;
  options.shrink = false;
  options.artifact_dir.clear();
  options.echo = nullptr;

  const fuzz::CampaignResult seq = fuzz::run_campaign(options);
  options.num_threads = 2;
  const fuzz::CampaignResult par = fuzz::run_campaign(options);
  EXPECT_EQ(seq.failures, 0u);
  EXPECT_EQ(par.failures, 0u)
      << "parallel engine disagreed with the single-thread oracle";
  EXPECT_EQ(seq.verdict_log, par.verdict_log)
      << "cross-checking must not change the verdict-log bytes";
}

}  // namespace
}  // namespace simgen

// DIMACS CNF import/export tests, including a solver round trip and a
// cross-check between encoded circuit CNF and its DIMACS serialization.
#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace simgen::sat {
namespace {

TEST(Dimacs, ParsesSimpleProblem) {
  const DimacsProblem problem = read_dimacs_string(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  EXPECT_EQ(problem.num_vars, 3u);
  ASSERT_EQ(problem.clauses.size(), 2u);
  EXPECT_EQ(problem.clauses[0][0], pos(sat::Var{0}));
  EXPECT_EQ(problem.clauses[0][1], neg(sat::Var{1}));
  EXPECT_EQ(problem.clauses[1][1], pos(sat::Var{2}));
}

TEST(Dimacs, MultiLineClausesAndComments) {
  // A clause may span lines conceptually; our reader handles one clause
  // per line plus several clauses on one line.
  const DimacsProblem problem = read_dimacs_string(
      "p cnf 2 3\n"
      "1 0 -1 2 0\n"
      "c interleaved comment\n"
      "-2 0\n");
  EXPECT_EQ(problem.clauses.size(), 3u);
}

TEST(Dimacs, Errors) {
  EXPECT_THROW(read_dimacs_string(""), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("1 2 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n5 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n1 2\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p dnf 2 1\n1 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p cnf 1 0\np cnf 1 0\n"), std::runtime_error);
}

TEST(Dimacs, SolveParsedProblem) {
  // (x1 | x2) & (!x1) & (!x2 | x3): forces x2, x3.
  Solver solver;
  const DimacsProblem problem = read_dimacs_string(
      "p cnf 3 3\n1 2 0\n-1 0\n-2 3 0\n");
  ASSERT_TRUE(load_problem(solver, problem));
  ASSERT_EQ(solver.solve(), Result::kSat);
  EXPECT_FALSE(solver.model_value(Var{0}));
  EXPECT_TRUE(solver.model_value(Var{1}));
  EXPECT_TRUE(solver.model_value(Var{2}));
}

TEST(Dimacs, LoadDetectsTrivialUnsat) {
  Solver solver;
  const DimacsProblem problem =
      read_dimacs_string("p cnf 1 2\n1 0\n-1 0\n");
  EXPECT_FALSE(load_problem(solver, problem));
  EXPECT_EQ(solver.solve(), Result::kUnsat);
}

TEST(Dimacs, WriteReadRoundTrip) {
  util::Rng rng(3);
  DimacsProblem problem;
  problem.num_vars = 12;
  for (int c = 0; c < 30; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k)
      clause.push_back(Lit(static_cast<Var>(rng.below(12)), rng.flip()));
    problem.clauses.push_back(clause);
  }
  const DimacsProblem reparsed = read_dimacs_string(write_dimacs_string(problem));
  EXPECT_EQ(reparsed.num_vars, problem.num_vars);
  ASSERT_EQ(reparsed.clauses.size(), problem.clauses.size());
  for (std::size_t c = 0; c < problem.clauses.size(); ++c)
    EXPECT_EQ(reparsed.clauses[c], problem.clauses[c]);
}

TEST(Dimacs, RoundTripPreservesSatisfiability) {
  // Verdicts of original and serialized-reparsed problems must agree.
  util::Rng rng(7);
  for (int round = 0; round < 15; ++round) {
    DimacsProblem problem;
    problem.num_vars = 8;
    const int clauses = 20 + static_cast<int>(rng.below(20));
    for (int c = 0; c < clauses; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k)
        clause.push_back(Lit(static_cast<Var>(rng.below(8)), rng.flip()));
      problem.clauses.push_back(clause);
    }
    Solver original, reparsed;
    load_problem(original, problem);
    load_problem(reparsed, read_dimacs_string(write_dimacs_string(problem)));
    EXPECT_EQ(original.solve(), reparsed.solve()) << "round " << round;
  }
}

}  // namespace
}  // namespace simgen::sat

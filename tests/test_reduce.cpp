// Network-reduction tests: merged networks must stay functionally
// equivalent (verified by full CEC) and get smaller.
#include "sweep/reduce.hpp"

#include <gtest/gtest.h>

#include <array>

#include "benchgen/generator.hpp"
#include "sim/random_sim.hpp"
#include "sweep/cec.hpp"
#include "sweep/sweeper.hpp"

namespace simgen::sweep {
namespace {

TEST(Reduce, MergesProvenPair) {
  // Two equivalent expressions of nand; merging drops one LUT.
  net::Network network;
  const net::NodeId a = network.add_pi("a");
  const net::NodeId b = network.add_pi("b");
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g1 = network.add_lut(f, tt::TruthTable::nand_gate(2));
  const net::NodeId g2 = network.add_lut(
      f, ~tt::TruthTable::projection(2, 0) | ~tt::TruthTable::projection(2, 1));
  network.add_po(g1, "x");
  network.add_po(g2, "y");

  const std::array<std::pair<net::NodeId, net::NodeId>, 1> pairs{{{g1, g2}}};
  ReductionStats stats;
  const net::Network reduced = reduce_network(network, pairs, &stats);
  EXPECT_EQ(reduced.num_luts(), 1u);
  EXPECT_EQ(stats.merged_nodes, 1u);
  EXPECT_EQ(reduced.num_pis(), 2u);
  EXPECT_EQ(reduced.num_pos(), 2u);
  // Both POs now read the same driver.
  EXPECT_EQ(reduced.fanins(reduced.pos()[0])[0],
            reduced.fanins(reduced.pos()[1])[0]);
}

TEST(Reduce, TransitiveMergeViaUnionFind) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const std::array<net::NodeId, 1> f{a};
  const net::NodeId g1 = network.add_lut(f, tt::TruthTable::buffer());
  const net::NodeId g2 = network.add_lut(f, tt::TruthTable::buffer());
  const net::NodeId g3 = network.add_lut(f, tt::TruthTable::buffer());
  network.add_po(g1);
  network.add_po(g2);
  network.add_po(g3);
  // Pairs (g2,g3) and (g1,g2): all three collapse onto g1.
  const std::array<std::pair<net::NodeId, net::NodeId>, 2> pairs{
      {{g2, g3}, {g1, g2}}};
  const net::Network reduced = reduce_network(network, pairs, nullptr);
  EXPECT_EQ(reduced.num_luts(), 1u);
}

TEST(Reduce, RemoveDeadLogic) {
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId used = network.add_lut(f, tt::TruthTable::and_gate(2));
  network.add_lut(f, tt::TruthTable::or_gate(2));  // dead
  network.add_po(used);

  ReductionStats stats;
  const net::Network cleaned = remove_dead_logic(network, &stats);
  EXPECT_EQ(cleaned.num_luts(), 1u);
  EXPECT_EQ(stats.removed_luts, 1u);
  EXPECT_EQ(cleaned.num_pis(), 2u);  // interface preserved
}

TEST(Reduce, SweepThenReduceStaysEquivalent) {
  // The full loop: sweep a redundancy-rich benchmark, merge the proven
  // pairs, prove the reduced network equivalent to the original.
  benchgen::CircuitSpec spec;
  spec.name = "reduce_flow";
  spec.num_pis = 12;
  spec.num_pos = 6;
  spec.num_gates = 250;
  spec.redundancy = 0.12;
  const net::Network network = benchgen::generate_mapped(spec);

  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 8;
  sim::run_random_simulation(simulator, classes, random_options);
  Sweeper sweeper(network, SweepOptions{});
  const SweepResult proof = sweeper.run(classes, simulator);
  ASSERT_GT(proof.proven_equivalent, 0u) << "need pairs to merge";

  ReductionStats stats;
  const net::Network reduced = reduce_network(network, proof.proven_pairs, &stats);
  EXPECT_LT(reduced.num_luts(), network.num_luts());
  EXPECT_EQ(stats.merged_nodes, proof.proven_pairs.size());

  const CecResult cec = check_equivalence(network, reduced, CecOptions{});
  EXPECT_TRUE(cec.equivalent);
}

TEST(Reduce, MergedFaninsAreRedirected) {
  // A consumer of the merged node must read the representative.
  net::Network network;
  const net::NodeId a = network.add_pi();
  const net::NodeId b = network.add_pi();
  const std::array<net::NodeId, 2> f{a, b};
  const net::NodeId g1 = network.add_lut(f, tt::TruthTable::and_gate(2));
  const net::NodeId g2 = network.add_lut(
      f, tt::TruthTable::projection(2, 0) & tt::TruthTable::projection(2, 1));
  const std::array<net::NodeId, 2> fc{g2, a};
  const net::NodeId consumer = network.add_lut(fc, tt::TruthTable::or_gate(2));
  network.add_po(g1);
  network.add_po(consumer);

  const std::array<std::pair<net::NodeId, net::NodeId>, 1> pairs{{{g1, g2}}};
  const net::Network reduced = reduce_network(network, pairs, nullptr);
  EXPECT_EQ(reduced.num_luts(), 2u);  // g1 + consumer
  reduced.check_invariants();
}

TEST(Reduce, NoPairsIsDeadLogicRemoval) {
  benchgen::CircuitSpec spec;
  spec.name = "reduce_nopairs";
  spec.num_gates = 120;
  const net::Network network = benchgen::generate_mapped(spec);
  const net::Network reduced = reduce_network(network, {}, nullptr);
  // Mapped networks have no dead logic, so nothing changes.
  EXPECT_EQ(reduced.num_luts(), network.num_luts());
}

}  // namespace
}  // namespace simgen::sweep

#include "sweep/fraig.hpp"

namespace simgen::sweep {
namespace {

TEST(Fraig, ReducesAndStaysEquivalent) {
  benchgen::CircuitSpec spec;
  spec.name = "fraig_flow";
  spec.num_pis = 12;
  spec.num_pos = 6;
  spec.num_gates = 300;
  spec.redundancy = 0.12;
  const net::Network network = benchgen::generate_mapped(spec);

  const FraigResult result = fraig(network);
  EXPECT_LT(result.network.num_luts(), network.num_luts());
  EXPECT_EQ(result.reduction.merged_nodes, result.sweep_stats.proven_pairs.size());
  EXPECT_LE(result.cost_after_guided, result.cost_after_random);

  const CecResult cec = check_equivalence(network, result.network, CecOptions{});
  EXPECT_TRUE(cec.equivalent);
}

TEST(Fraig, IdempotentOnReducedNetwork) {
  // Fraiging a fraiged network must find (almost) nothing left to merge.
  benchgen::CircuitSpec spec;
  spec.name = "fraig_idem";
  spec.num_gates = 250;
  spec.redundancy = 0.12;
  const net::Network network = benchgen::generate_mapped(spec);
  const FraigResult first = fraig(network);
  const FraigResult second = fraig(first.network);
  EXPECT_EQ(second.reduction.merged_nodes, 0u);
  EXPECT_EQ(second.network.num_luts(), first.network.num_luts());
}

}  // namespace
}  // namespace simgen::sweep

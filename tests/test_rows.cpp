// Row database and row-matching tests: the primitive under implication
// and decision.
#include "simgen/rows.hpp"

#include <gtest/gtest.h>

#include <array>

namespace simgen::core {
namespace {

struct AndFixture {
  net::Network network;
  net::NodeId a, b, g;

  AndFixture() {
    a = network.add_pi();
    b = network.add_pi();
    const std::array<net::NodeId, 2> f{a, b};
    g = network.add_lut(f, tt::TruthTable::and_gate(2));
    network.add_po(g);
  }
};

TEST(RowDatabase, AndGateRows) {
  const AndFixture fx;
  const RowDatabase rows(fx.network);
  const auto& list = rows.rows(fx.g);
  // ON: {11}; OFF: {0-, -0} -> 3 rows total.
  ASSERT_EQ(list.size(), 3u);
  int on_rows = 0;
  for (const Row& row : list)
    if (row.output) ++on_rows;
  EXPECT_EQ(on_rows, 1);
}

TEST(RowDatabase, NonLutNodesHaveNoRows) {
  const AndFixture fx;
  const RowDatabase rows(fx.network);
  EXPECT_TRUE(rows.rows(fx.a).empty());
}

TEST(RowDatabase, CachingReturnsSameObject) {
  const AndFixture fx;
  const RowDatabase rows(fx.network);
  const auto* first = &rows.rows(fx.g);
  EXPECT_EQ(first, &rows.rows(fx.g));
}

TEST(RowMatching, UnconstrainedMatchesEverything) {
  const AndFixture fx;
  const RowDatabase rows(fx.network);
  const NodeValues values(fx.network.num_nodes());
  const auto matches = matching_rows(fx.network, rows, values, fx.g);
  EXPECT_EQ(matches.size(), 3u);
}

TEST(RowMatching, OutputConstraintFiltersPlane) {
  const AndFixture fx;
  const RowDatabase rows(fx.network);
  NodeValues values(fx.network.num_nodes());
  values.assign(fx.g, TVal::kOne);
  const auto matches = matching_rows(fx.network, rows, values, fx.g);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(rows.rows(fx.g)[matches[0]].output);
}

TEST(RowMatching, InputConstraintFiltersCubes) {
  const AndFixture fx;
  const RowDatabase rows(fx.network);
  NodeValues values(fx.network.num_nodes());
  values.assign(fx.a, TVal::kZero);
  // a=0 kills the ON row {11}; both OFF rows survive ({0-} matches, {-0}
  // has a DC on a so it also matches).
  const auto matches = matching_rows(fx.network, rows, values, fx.g);
  EXPECT_EQ(matches.size(), 2u);
  for (const std::size_t m : matches)
    EXPECT_FALSE(rows.rows(fx.g)[m].output);
}

TEST(RowMatching, ContradictionMatchesNothing) {
  const AndFixture fx;
  const RowDatabase rows(fx.network);
  NodeValues values(fx.network.num_nodes());
  values.assign(fx.a, TVal::kZero);
  values.assign(fx.g, TVal::kOne);  // and(0, b) can never be 1
  EXPECT_TRUE(matching_rows(fx.network, rows, values, fx.g).empty());
}

TEST(RowMatching, FullyConsistentAssignmentMatches) {
  const AndFixture fx;
  const RowDatabase rows(fx.network);
  NodeValues values(fx.network.num_nodes());
  values.assign(fx.a, TVal::kOne);
  values.assign(fx.b, TVal::kOne);
  values.assign(fx.g, TVal::kOne);
  EXPECT_EQ(matching_rows(fx.network, rows, values, fx.g).size(), 1u);
}

}  // namespace
}  // namespace simgen::core

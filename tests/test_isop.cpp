// Tests for the Minato-Morreale ISOP extraction. The key property: the
// cover evaluates back to exactly the function (this is what makes rows a
// faithful stand-in for the node's truth table in SimGen and in the CNF
// encoder).
#include "tt/isop.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace simgen::tt {
namespace {

TruthTable random_table(unsigned num_vars, util::Rng& rng) {
  TruthTable table(num_vars);
  for (std::uint64_t m = 0; m < table.num_bits(); ++m)
    table.set_bit(m, rng.flip());
  return table;
}

TEST(Isop, ConstantFunctions) {
  EXPECT_TRUE(isop(TruthTable::constant(3, false)).empty());
  const Cover ones = isop(TruthTable::constant(3, true));
  ASSERT_EQ(ones.size(), 1u);
  EXPECT_EQ(ones.cubes[0].num_literals(), 0u);  // tautology cube
}

TEST(Isop, AndGateIsOneCube) {
  const Cover cover = isop(TruthTable::and_gate(3));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover.cubes[0].num_literals(), 3u);
  EXPECT_EQ(cover.cubes[0].to_string(3), "111");
}

TEST(Isop, OrGateIsOneCubePerInput) {
  const Cover cover = isop(TruthTable::or_gate(3));
  EXPECT_EQ(cover.size(), 3u);
  for (const Cube& cube : cover.cubes) EXPECT_EQ(cube.num_literals(), 1u);
}

TEST(Isop, XorNeedsAllMinterms) {
  // XOR has no don't-cares: every cube is a full minterm.
  const Cover cover = isop(TruthTable::xor_gate(3));
  EXPECT_EQ(cover.size(), 4u);
  for (const Cube& cube : cover.cubes) EXPECT_EQ(cube.num_literals(), 3u);
}

TEST(Isop, RejectsIntersectingDontCare) {
  const auto f = TruthTable::and_gate(2);
  EXPECT_THROW(isop(f, f), std::invalid_argument);
}

TEST(Isop, RejectsArityMismatch) {
  EXPECT_THROW(isop(TruthTable::and_gate(2), TruthTable::constant(3, false)),
               std::invalid_argument);
}

TEST(Isop, DontCaresShrinkCover) {
  // f = exactly one minterm, dc = everything else: a single empty cube
  // suffices (the interval contains the tautology).
  TruthTable f(3);
  f.set_bit(5, true);
  const TruthTable dc = ~f;
  const Cover cover = isop(f, dc);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover.cubes[0].num_literals(), 0u);
}

TEST(Isop, IntervalContainment) {
  // With dc, the cover must lie between f and f|dc.
  util::Rng rng(77);
  for (int round = 0; round < 30; ++round) {
    const auto f = random_table(5, rng);
    const auto dc = random_table(5, rng) & ~f;
    const Cover cover = isop(f, dc);
    const auto g = cover.to_truth_table(5);
    EXPECT_TRUE(f.implies(g));
    EXPECT_TRUE(g.implies(f | dc));
  }
}

TEST(ComputeRows, PlanesPartitionTheSpace) {
  util::Rng rng(123);
  const auto f = random_table(4, rng);
  const RowSet rows = compute_rows(f);
  EXPECT_EQ(rows.on.to_truth_table(4), f);
  EXPECT_EQ(rows.off.to_truth_table(4), ~f);
  EXPECT_EQ(rows.num_rows(), rows.on.size() + rows.off.size());
}

// Property sweep: exact-cover round trip over many random functions and
// all arities, including the multi-word regime.
class IsopProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(IsopProperty, CoverEqualsFunction) {
  const unsigned n = GetParam();
  util::Rng rng(500 + n);
  for (int round = 0; round < 25; ++round) {
    const auto f = random_table(n, rng);
    EXPECT_EQ(isop(f).to_truth_table(n), f) << "n=" << n << " round=" << round;
  }
}

TEST_P(IsopProperty, IrredundantNoCubeDroppable) {
  const unsigned n = GetParam();
  util::Rng rng(900 + n);
  const auto f = random_table(n, rng);
  const Cover cover = isop(f);
  // Irredundancy: removing any single cube loses part of the function.
  for (std::size_t skip = 0; skip < cover.size(); ++skip) {
    Cover reduced;
    for (std::size_t i = 0; i < cover.size(); ++i)
      if (i != skip) reduced.cubes.push_back(cover.cubes[i]);
    EXPECT_NE(reduced.to_truth_table(n), f) << "cube " << skip << " is redundant";
  }
}

TEST_P(IsopProperty, EveryCubeImpliesFunction) {
  const unsigned n = GetParam();
  util::Rng rng(1300 + n);
  const auto f = random_table(n, rng);
  for (const Cube& cube : isop(f).cubes)
    EXPECT_TRUE(cube.to_truth_table(n).implies(f));
}

INSTANTIATE_TEST_SUITE_P(Arities, IsopProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace simgen::tt

// NodeValues (ternary assignment + trail) tests.
#include "simgen/tval.hpp"

#include <gtest/gtest.h>

namespace simgen::core {
namespace {

TEST(TVal, Conversions) {
  EXPECT_EQ(tval_of(true), TVal::kOne);
  EXPECT_EQ(tval_of(false), TVal::kZero);
  EXPECT_EQ(tval_char(TVal::kZero), '0');
  EXPECT_EQ(tval_char(TVal::kOne), '1');
  EXPECT_EQ(tval_char(TVal::kUnknown), 'X');
}

TEST(NodeValues, StartsUnassigned) {
  const NodeValues values(5);
  for (net::NodeId id{0}; id < 5; ++id) {
    EXPECT_EQ(values.get(id), TVal::kUnknown);
    EXPECT_FALSE(values.is_assigned(id));
  }
  EXPECT_EQ(values.num_assigned(), 0u);
}

TEST(NodeValues, AssignAndTrail) {
  NodeValues values(5);
  values.assign(net::NodeId{2}, TVal::kOne);
  values.assign(net::NodeId{0}, TVal::kZero);
  EXPECT_TRUE(values.is_assigned(net::NodeId{2}));
  EXPECT_EQ(values.get(net::NodeId{2}), TVal::kOne);
  EXPECT_EQ(values.get(net::NodeId{0}), TVal::kZero);
  ASSERT_EQ(values.trail().size(), 2u);
  EXPECT_EQ(values.trail()[0], 2u);
  EXPECT_EQ(values.trail()[1], 0u);
}

TEST(NodeValues, RollbackRestoresExactly) {
  NodeValues values(6);
  values.assign(net::NodeId{1}, TVal::kOne);
  const std::size_t mark = values.mark();
  values.assign(net::NodeId{2}, TVal::kZero);
  values.assign(net::NodeId{3}, TVal::kOne);
  values.rollback_to(mark);
  EXPECT_TRUE(values.is_assigned(net::NodeId{1}));
  EXPECT_FALSE(values.is_assigned(net::NodeId{2}));
  EXPECT_FALSE(values.is_assigned(net::NodeId{3}));
  EXPECT_EQ(values.num_assigned(), 1u);
}

TEST(NodeValues, RollbackToCurrentMarkIsNoOp) {
  NodeValues values(3);
  values.assign(net::NodeId{0}, TVal::kOne);
  values.rollback_to(values.mark());
  EXPECT_TRUE(values.is_assigned(net::NodeId{0}));
}

TEST(NodeValues, NestedRollbacks) {
  NodeValues values(8);
  values.assign(net::NodeId{0}, TVal::kOne);
  const std::size_t outer = values.mark();
  values.assign(net::NodeId{1}, TVal::kZero);
  const std::size_t inner = values.mark();
  values.assign(net::NodeId{2}, TVal::kOne);
  values.rollback_to(inner);
  EXPECT_FALSE(values.is_assigned(net::NodeId{2}));
  EXPECT_TRUE(values.is_assigned(net::NodeId{1}));
  values.rollback_to(outer);
  EXPECT_FALSE(values.is_assigned(net::NodeId{1}));
  EXPECT_TRUE(values.is_assigned(net::NodeId{0}));
}

TEST(NodeValues, ResetClearsEverything) {
  NodeValues values(4);
  values.assign(net::NodeId{0}, TVal::kOne);
  values.assign(net::NodeId{3}, TVal::kZero);
  values.reset();
  EXPECT_EQ(values.num_assigned(), 0u);
  for (net::NodeId id{0}; id < 4; ++id) EXPECT_FALSE(values.is_assigned(id));
}

}  // namespace
}  // namespace simgen::core

// Unit tests for the LUT network: construction rules, invariants, levels.
#include "network/network.hpp"

#include <gtest/gtest.h>

#include <array>

namespace simgen::net {
namespace {

tt::TruthTable and2() { return tt::TruthTable::and_gate(2); }

TEST(Network, EmptyNetwork) {
  const Network network("empty");
  EXPECT_EQ(network.num_nodes(), 0u);
  EXPECT_EQ(network.num_pis(), 0u);
  EXPECT_EQ(network.num_pos(), 0u);
  EXPECT_EQ(network.num_luts(), 0u);
  EXPECT_EQ(network.name(), "empty");
  network.check_invariants();
}

TEST(Network, BuildSmallCircuit) {
  Network network;
  const NodeId a = network.add_pi("a");
  const NodeId b = network.add_pi("b");
  const std::array<NodeId, 2> fanins{a, b};
  const NodeId g = network.add_lut(fanins, and2(), "g");
  const NodeId po = network.add_po(g, "out");

  EXPECT_EQ(network.num_nodes(), 4u);
  EXPECT_EQ(network.num_pis(), 2u);
  EXPECT_EQ(network.num_pos(), 1u);
  EXPECT_EQ(network.num_luts(), 1u);
  EXPECT_TRUE(network.is_pi(a));
  EXPECT_TRUE(network.is_lut(g));
  EXPECT_TRUE(network.is_po(po));
  EXPECT_EQ(network.fanins(g).size(), 2u);
  EXPECT_EQ(network.fanouts(a).size(), 1u);
  EXPECT_EQ(network.fanouts(a)[0], g);
  network.check_invariants();
}

TEST(Network, ConstantsAreShared) {
  Network network;
  const NodeId c0 = network.add_constant(false);
  const NodeId c0_again = network.add_constant(false);
  const NodeId c1 = network.add_constant(true);
  EXPECT_EQ(c0, c0_again);
  EXPECT_NE(c0, c1);
  EXPECT_TRUE(network.is_constant(c0));
  EXPECT_FALSE(network.node(c0).constant_value);
  EXPECT_TRUE(network.node(c1).constant_value);
}

TEST(Network, LevelsFollowLongestPath) {
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const std::array<NodeId, 2> f1{a, b};
  const NodeId g1 = network.add_lut(f1, and2());
  const std::array<NodeId, 2> f2{g1, b};
  const NodeId g2 = network.add_lut(f2, and2());
  const std::array<NodeId, 2> f3{a, b};
  const NodeId g3 = network.add_lut(f3, and2());
  const std::array<NodeId, 2> f4{g2, g3};
  const NodeId g4 = network.add_lut(f4, and2());
  const NodeId po = network.add_po(g4);

  EXPECT_EQ(network.level(a), 0u);
  EXPECT_EQ(network.level(g1), 1u);
  EXPECT_EQ(network.level(g2), 2u);
  EXPECT_EQ(network.level(g3), 1u);
  EXPECT_EQ(network.level(g4), 3u);
  EXPECT_EQ(network.level(po), 3u);  // POs are transparent
  EXPECT_EQ(network.depth(), 3u);
}

TEST(Network, ArityMismatchThrows) {
  Network network;
  const NodeId a = network.add_pi();
  const std::array<NodeId, 1> fanins{a};
  EXPECT_THROW(network.add_lut(fanins, and2()), std::invalid_argument);
}

TEST(Network, DanglingFaninThrows) {
  Network network;
  const NodeId a = network.add_pi();
  const std::array<NodeId, 2> fanins{a, NodeId{42}};
  EXPECT_THROW(network.add_lut(fanins, and2()), std::invalid_argument);
}

TEST(Network, PoCannotBeFanin) {
  Network network;
  const NodeId a = network.add_pi();
  const NodeId po = network.add_po(a);
  const std::array<NodeId, 2> fanins{a, po};
  EXPECT_THROW(network.add_lut(fanins, and2()), std::invalid_argument);
  EXPECT_THROW(network.add_po(po), std::invalid_argument);
}

TEST(Network, FaninIndexLookup) {
  Network network;
  const NodeId a = network.add_pi();
  const NodeId b = network.add_pi();
  const std::array<NodeId, 2> fanins{b, a};
  const NodeId g = network.add_lut(fanins, and2());
  EXPECT_EQ(network.fanin_index(g, b), 0u);
  EXPECT_EQ(network.fanin_index(g, a), 1u);
  EXPECT_EQ(network.fanin_index(g, g), static_cast<std::size_t>(kNullNode));
}

TEST(Network, TopologicalOrderIsCreationOrder) {
  Network network;
  const NodeId a = network.add_pi();
  const std::array<NodeId, 1> fanins{a};
  network.add_lut(fanins, tt::TruthTable::not_gate());
  const auto order = network.topological_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(Network, DuplicateFaninAllowed) {
  // Some mapped covers legitimately repeat a leaf; fanin/fanout symmetry
  // must count multiplicity.
  Network network;
  const NodeId a = network.add_pi();
  const std::array<NodeId, 2> fanins{a, a};
  const NodeId g = network.add_lut(fanins, tt::TruthTable::xor_gate(2));
  EXPECT_EQ(network.fanouts(a).size(), 2u);
  EXPECT_EQ(network.fanins(g).size(), 2u);
  network.check_invariants();
}

}  // namespace
}  // namespace simgen::net

/// \file test_fuzz.cpp
/// \brief The differential fuzzing harness itself: generators, mutation
/// engine, oracles, shrinker, artifacts, and campaign determinism.
///
/// The harness is only a trustworthy oracle if its own ground truth is
/// sound — equivalence-preserving rewrites must actually preserve the
/// function, injected faults must carry a real witness, the shrinker
/// must preserve the failing property while reducing, and a campaign
/// must be a pure function of its seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "check/lint.hpp"
#include "fuzz/artifact.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/gen.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "io/blif.hpp"
#include "obs/metrics.hpp"
#include "sweep/cec.hpp"
#include "util/rng.hpp"

namespace simgen::fuzz {
namespace {

sweep::CecOptions fast_cec() {
  sweep::CecOptions options;
  options.random_rounds = 4;
  options.use_guided_simulation = false;
  options.sweep_internal_nodes = false;
  return options;
}

net::Network random_network(std::uint64_t seed) {
  util::Rng rng(seed);
  return random_lut_network(rng, random_lut_options(rng, GenProfile{}));
}

TEST(Fuzz, GeneratedNetworksAreLintCleanAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const net::Network network = random_network(seed);
    EXPECT_FALSE(check::lint_network(network).has_errors());
    EXPECT_GT(network.num_pis(), 0u);
    EXPECT_GT(network.num_pos(), 0u);
    // Same seed, same bytes.
    const net::Network again = random_network(seed);
    EXPECT_EQ(io::write_blif_string(network), io::write_blif_string(again));
  }
}

TEST(Fuzz, EquivalentRewritesPreserveTheFunction) {
  util::Rng rng(21);
  for (int i = 0; i < 6; ++i) {
    const net::Network base = random_network(100 + i);
    const Mutant mutant = rewrite_equivalent(base, rng, 1 + rng.below(3));
    ASSERT_TRUE(mutant.equivalent);
    EXPECT_FALSE(mutant.description.empty());
    EXPECT_FALSE(check::lint_network(mutant.network).has_errors());
    EXPECT_TRUE(
        sweep::check_equivalence(base, mutant.network, fast_cec()).equivalent)
        << "rewrite " << mutant.description << " changed the function";
  }
}

TEST(Fuzz, InjectedFaultsCarryAValidWitness) {
  util::Rng rng(22);
  for (int i = 0; i < 6; ++i) {
    const net::Network base = random_network(200 + i);
    const Mutant mutant = inject_fault(base, rng);
    ASSERT_FALSE(mutant.equivalent);
    ASSERT_EQ(mutant.witness.size(), base.num_pis());
    EXPECT_TRUE(counterexample_valid(base, mutant.network, mutant.witness))
        << "fault " << mutant.description << " witness does not propagate";
    const sweep::CecResult verdict =
        sweep::check_equivalence(base, mutant.network, fast_cec());
    EXPECT_FALSE(verdict.equivalent);
    EXPECT_TRUE(counterexample_valid(base, mutant.network, verdict.counterexample));
  }
}

// Acceptance-criterion shape: a seeded injected-fault miter shrinks to
// <= 20 nodes while the miter stays provably nonzero, and the emitted
// .blif artifact reproduces the failure standalone.
TEST(Fuzz, ShrinkerReducesFaultMiterBelowTwentyNodes) {
  util::Rng rng(7);
  const net::Network base = random_network(300);
  const Mutant mutant = inject_fault(base, rng);
  ASSERT_FALSE(mutant.equivalent);
  const net::Network miter =
      sweep::make_miter(base, mutant.network).network;
  const auto still_fails = [](const net::Network& candidate) {
    return miter_nonzero(candidate, 7);
  };
  ASSERT_TRUE(still_fails(miter));
  const ShrinkResult shrunk = shrink_network(miter, still_fails);
  EXPECT_LE(shrunk.network.num_nodes(), 20u)
      << "shrinker stalled at " << shrunk.network.num_nodes() << " nodes";
  EXPECT_LT(shrunk.network.num_nodes(), miter.num_nodes());
  EXPECT_TRUE(still_fails(shrunk.network));
  EXPECT_GT(shrunk.reductions, 0u);

  // Artifact round trip: the written repro reproduces standalone.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "simgen_fuzz_test_artifacts";
  std::filesystem::remove_all(dir);
  const ReproInfo info{/*seed=*/7, /*iteration=*/0, "sat-miter",
                       "miter nonzero", miter.num_nodes()};
  const std::string path =
      write_blif_repro(dir.string(), "shrunk_fault_miter", info, shrunk.network);
  const net::Network reloaded = io::read_blif_file(path);
  EXPECT_TRUE(still_fails(reloaded));
  std::filesystem::remove_all(dir);
}

TEST(Fuzz, ShrinkerRejectsPassingInput) {
  const net::Network network = random_network(301);
  EXPECT_THROW(
      (void)shrink_network(network,
                           [](const net::Network&) { return false; }),
      std::invalid_argument);
}

TEST(Fuzz, PairOraclesAgreeOnGroundTruth) {
  util::Rng rng(23);
  const net::Network base = random_network(400);
  PairOracleOptions options;
  options.seed = 23;
  const Mutant eq = rewrite_equivalent(base, rng);
  for (const OracleResult& result : check_pair(base, eq, options))
    EXPECT_TRUE(result.pass) << result.name << ": " << result.detail;
  const Mutant neq = inject_fault(base, rng);
  for (const OracleResult& result : check_pair(base, neq, options))
    EXPECT_TRUE(result.pass) << result.name << ": " << result.detail;
}

// The determinism satellite: two runs of the same campaign produce
// byte-identical verdict logs and identical eq.*/sat.* counter deltas.
TEST(Fuzz, CampaignIsDeterministicPerSeed) {
  CampaignOptions options;
  options.seed = 5;
  options.iterations = 6;
  options.shrink = false;  // no artifacts, keep it quick

  const obs::TelemetrySnapshot before1 = obs::capture_snapshot();
  const CampaignResult run1 = run_campaign(options);
  const obs::TelemetrySnapshot after1 = obs::capture_snapshot();
  const CampaignResult run2 = run_campaign(options);
  const obs::TelemetrySnapshot after2 = obs::capture_snapshot();

  EXPECT_EQ(run1.failures, 0u);
  EXPECT_EQ(run2.failures, 0u);
  ASSERT_EQ(run1.verdict_log, run2.verdict_log);
  EXPECT_EQ(run1.checks, run2.checks);

  const obs::TelemetrySnapshot delta1 = obs::diff_snapshots(before1, after1);
  const obs::TelemetrySnapshot delta2 = obs::diff_snapshots(after1, after2);
  for (const auto& [name, value] : delta1.counters) {
    if (name.rfind("eq.", 0) != 0 && name.rfind("sat.", 0) != 0) continue;
    EXPECT_EQ(delta2.counter_value(name), value)
        << "counter " << name << " differs between identical runs";
  }
}

TEST(Fuzz, FirstIterationReplaysTheSameContent) {
  CampaignOptions options;
  options.seed = 9;
  options.iterations = 3;
  options.shrink = false;
  const CampaignResult full = run_campaign(options);

  options.first_iteration = 2;
  options.iterations = 1;
  const CampaignResult tail = run_campaign(options);
  ASSERT_EQ(tail.iterations, 1u);
  // The replayed line is exactly the full run's final line.
  const std::string& log = full.verdict_log;
  const std::size_t last_line =
      log.rfind("iter ", log.size() - 2);  // log ends with '\n'
  ASSERT_NE(last_line, std::string::npos);
  EXPECT_EQ(tail.verdict_log, log.substr(last_line));
}

TEST(Fuzz, ReplayOracleSetCoversEnginesAndRoundtrips) {
  const net::Network network = random_network(500);
  const std::vector<OracleResult> results = replay_network(network, 500);
  // All six arms + sat-miter + bdd + blif/bench round trips.
  EXPECT_GE(results.size(), 10u);
  for (const OracleResult& result : results)
    EXPECT_TRUE(result.pass) << result.name << ": " << result.detail;
}

}  // namespace
}  // namespace simgen::fuzz

#!/usr/bin/env python3
"""Negative-compile driver for the simgen-tidy plugin.

Runs one check from the plugin over one fixture and asserts the outcome:

  run_tidy_test.py --clang-tidy BIN --plugin SO --check NAME \
      --fixture FILE --expect {diagnostic,clean} -- [compile args...]

'diagnostic' fixtures must trigger the named check at least once (and the
run must fail, since the check is promoted via --warnings-as-errors);
'clean' fixtures must pass with zero simgen-* output. Compiler errors in
the fixture itself always fail the test: a fixture that does not compile
exercises nothing.
"""

import argparse
import re
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--check", required=True)
    parser.add_argument("--fixture", required=True)
    parser.add_argument("--expect", required=True,
                        choices=("diagnostic", "clean"))
    parser.add_argument("compile_args", nargs="*",
                        help="arguments after '--' go to the compile line")
    args = parser.parse_args()

    command = [
        args.clang_tidy,
        f"--load={args.plugin}",
        f"--checks=-*,{args.check}",
        f"--warnings-as-errors={args.check}",
        args.fixture,
        "--",
    ] + args.compile_args
    result = subprocess.run(command, capture_output=True, text=True)
    output = result.stdout + result.stderr
    sys.stdout.write(output)

    if "[clang-diagnostic-error]" in output:
        print(f"FAIL: fixture {args.fixture} did not compile", file=sys.stderr)
        return 1

    fired = re.search(rf"\[{re.escape(args.check)}\]", output) is not None
    if args.expect == "diagnostic":
        if not fired:
            print(f"FAIL: expected a [{args.check}] diagnostic, got none",
                  file=sys.stderr)
            return 1
        if result.returncode == 0:
            print("FAIL: diagnostic fired but --warnings-as-errors did not "
                  "fail the run", file=sys.stderr)
            return 1
    else:
        if fired:
            print(f"FAIL: clean fixture triggered [{args.check}]",
                  file=sys.stderr)
            return 1
        if result.returncode != 0:
            print(f"FAIL: clean fixture exited {result.returncode}",
                  file=sys.stderr)
            return 1
    print(f"PASS: {args.fixture} ({args.expect})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

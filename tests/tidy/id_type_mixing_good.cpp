// simgen-id-type-mixing fixture: MUST be clean.
// Same-space arithmetic and explicit .value() escapes are allowed.
#include "network/network.hpp"
#include "sat/solver.hpp"
#include "sim/eqclass.hpp"

unsigned long long same_space(simgen::net::NodeId a, simgen::net::NodeId b) {
  return a + b;  // offsets within one index space stay legal
}

unsigned long long explicit_mix(simgen::net::NodeId node, simgen::sat::Var var) {
  return node.value() + var.value();  // sanctioned escape hatch
}

bool against_plain_int(simgen::sim::ClassId cls, std::size_t count) {
  return cls < count;  // strong id vs plain integer is fine (loop bounds)
}

// simgen-id-type-mixing fixture: MUST produce the diagnostic.
// A node id and a SAT variable decay to the same uint32_t, so the
// compiler accepts every one of these; the check must not.
#include "network/network.hpp"
#include "sat/solver.hpp"
#include "sim/eqclass.hpp"

unsigned long long mix_add(simgen::net::NodeId node, simgen::sat::Var var) {
  return node + var;
}

bool mix_compare(simgen::net::NodeId node, simgen::sim::ClassId cls) {
  return node == cls;
}

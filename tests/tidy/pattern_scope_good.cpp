// simgen-pattern-scope fixture: MUST be clean.
// The PatternScope local attributes every split in the batch; placing it
// before a loop of refine() calls also counts (the check accepts a scope
// anywhere in the enclosing function).
#include "obs/journal.hpp"
#include "sim/eqclass.hpp"
#include "sim/simulator.hpp"

std::size_t attributed_refine(simgen::sim::EquivClasses& classes,
                              const simgen::sim::Simulator& simulator) {
  const simgen::obs::PatternScope scope(simgen::obs::PatternSource::kRandom,
                                        /*patterns=*/0);
  return classes.refine(simulator);
}

// simgen-arena-ref fixture: MUST be clean.
// The same work through the Solver public API — clauses go in by
// literal span, verdicts and models come out by value; no arena types
// appear (the solver's own headers mention them, but those expansions
// are inside src/sat and exempt).
#include <vector>

#include "sat/solver.hpp"

namespace demo {

bool tiny_query() {
  simgen::sat::Solver solver;
  const simgen::sat::Var a = solver.new_var();
  const simgen::sat::Var b = solver.new_var();
  const std::vector<simgen::sat::Lit> clause = {simgen::sat::pos(a),
                                                simgen::sat::neg(b)};
  solver.add_clause(clause);
  return solver.solve() == simgen::sat::Result::kSat;
}

}  // namespace demo

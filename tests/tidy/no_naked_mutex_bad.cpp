// simgen-no-naked-mutex fixture: MUST produce the diagnostic.
// Raw std synchronization outside src/util is invisible to
// -Wthread-safety; each declaration below should be flagged.
#include <condition_variable>
#include <mutex>

namespace demo {

struct Queue {
  std::mutex mutex;                  // naked field
  std::condition_variable ready_cv;  // naked field
  int depth = 0;
};

int drain(Queue& queue) {
  std::lock_guard<std::mutex> lock(queue.mutex);  // naked local
  return queue.depth;
}

}  // namespace demo

// simgen-journal-event-layout fixture: MUST produce the diagnostic.
// A decoy simgen::obs::JournalEvent whose first field is 32-bit: the
// record would still be trivially copyable and could even be padded back
// to 64 bytes, but every field after t_ns lands at the wrong offset and
// archived journals would be misread. (This file deliberately does NOT
// include the real obs/journal.hpp.)
#include <cstdint>

namespace simgen::obs {

enum class EventKind : std::uint8_t { kNone = 0 };

struct JournalEvent {
  std::uint32_t t_ns = 0;  // wrong: v1 format has 64 bits at offset 0
  std::uint32_t pad = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t v0 = 0;
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  std::uint64_t v3 = 0;
  std::uint32_t dur_us = 0;
  std::uint16_t flags = 0;
  EventKind kind = EventKind::kNone;
  std::uint8_t code = 0;
};

}  // namespace simgen::obs

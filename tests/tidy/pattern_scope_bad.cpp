// simgen-pattern-scope fixture: MUST produce the diagnostic.
// refine() with no obs::PatternScope anywhere in the enclosing function:
// every class split it causes would be journaled as PatternSource::kNone.
#include "sim/eqclass.hpp"
#include "sim/simulator.hpp"

std::size_t unattributed_refine(simgen::sim::EquivClasses& classes,
                                const simgen::sim::Simulator& simulator) {
  return classes.refine(simulator);
}

// simgen-no-naked-mutex fixture: MUST be clean.
// The annotated wrappers are the sanctioned vocabulary everywhere
// outside src/util (their internals are exempted by AllowedFilesRegex).
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace demo {

struct Queue {
  simgen::util::Mutex mutex;
  simgen::util::CondVar ready_cv;
  int depth SIMGEN_GUARDED_BY(mutex) = 0;
};

int drain(Queue& queue) {
  const simgen::util::LockGuard lock(queue.mutex);
  return queue.depth;
}

}  // namespace demo

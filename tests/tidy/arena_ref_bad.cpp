// simgen-arena-ref fixture: MUST produce the diagnostic.
// Naming sat::ClauseRef or sat::ClauseArena outside src/sat reaches into
// the packed-arena representation; every written occurrence below should
// be flagged.
#include "sat/arena.hpp"

namespace demo {

simgen::sat::ClauseRef stash = 0;  // ref held across solver calls

unsigned first_literal(const simgen::sat::ClauseArena& arena,  // arena param
                       simgen::sat::ClauseRef ref) {           // ref param
  return arena.lit(ref, 0).code();
}

}  // namespace demo

// simgen-journal-event-layout fixture: MUST be clean.
// The real record: the check's independent offset table must agree with
// the shipped header, otherwise either the struct drifted or the check's
// table did — both need a human.
#include "obs/journal.hpp"

simgen::obs::JournalEvent make_event() { return {}; }

// Unit tests for tt::Cube and tt::Cover — the "truth table row" primitive
// SimGen's implication/decision machinery is built on.
#include "tt/cube.hpp"

#include <gtest/gtest.h>

namespace simgen::tt {
namespace {

TEST(Cube, DefaultIsAllDontCare) {
  const Cube cube;
  EXPECT_EQ(cube.num_literals(), 0u);
  EXPECT_EQ(cube.num_dcs(4), 4u);
  EXPECT_TRUE(cube.contains(0b0000));
  EXPECT_TRUE(cube.contains(0b1111));
}

TEST(Cube, SetAndClearLiterals) {
  Cube cube;
  cube.set_literal(0, true);
  cube.set_literal(2, false);
  EXPECT_TRUE(cube.has_literal(0));
  EXPECT_FALSE(cube.has_literal(1));
  EXPECT_TRUE(cube.has_literal(2));
  EXPECT_TRUE(cube.literal_value(0));
  EXPECT_FALSE(cube.literal_value(2));
  EXPECT_EQ(cube.num_literals(), 2u);
  EXPECT_EQ(cube.num_dcs(4), 2u);
  cube.clear_literal(0);
  EXPECT_FALSE(cube.has_literal(0));
  EXPECT_EQ(cube.num_literals(), 1u);
}

TEST(Cube, OverwriteLiteralPolarity) {
  Cube cube;
  cube.set_literal(1, true);
  cube.set_literal(1, false);
  EXPECT_TRUE(cube.has_literal(1));
  EXPECT_FALSE(cube.literal_value(1));
}

TEST(Cube, ContainsChecksOnlyLiterals) {
  Cube cube;
  cube.set_literal(0, true);
  cube.set_literal(2, false);
  EXPECT_TRUE(cube.contains(0b0001));
  EXPECT_TRUE(cube.contains(0b0011));
  EXPECT_FALSE(cube.contains(0b0101));  // bit2 set but literal requires 0
  EXPECT_FALSE(cube.contains(0b0000));  // bit0 clear but literal requires 1
}

TEST(Cube, ConstructorNormalizesBits) {
  // bits outside the mask must be cleared so equality is structural.
  const Cube a(0b0101, 0b1111);
  const Cube b(0b0101, 0b0101);
  EXPECT_EQ(a, b);
}

TEST(Cube, ToTruthTable) {
  Cube cube;
  cube.set_literal(0, true);
  cube.set_literal(1, false);
  const auto table = cube.to_truth_table(3);
  for (unsigned m = 0; m < 8; ++m)
    EXPECT_EQ(table.get_bit(m), cube.contains(m));
}

TEST(Cube, ToStringFormat) {
  Cube cube;
  cube.set_literal(0, true);
  cube.set_literal(2, false);
  EXPECT_EQ(cube.to_string(4), "1-0-");
}

TEST(Cover, ToTruthTableIsUnionOfCubes) {
  Cover cover;
  Cube a;
  a.set_literal(0, true);
  Cube b;
  b.set_literal(1, true);
  cover.cubes = {a, b};
  const auto table = cover.to_truth_table(2);
  EXPECT_EQ(table, TruthTable::or_gate(2));
}

TEST(Cover, EmptyCoverIsConstantZero) {
  const Cover cover;
  EXPECT_TRUE(cover.to_truth_table(3).is_const0());
  EXPECT_TRUE(cover.empty());
}

}  // namespace
}  // namespace simgen::tt

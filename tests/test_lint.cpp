/// \file test_lint.cpp
/// \brief Structural lint pass: every check fires on deliberate
/// corruption and stays silent on well-formed structures.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "benchgen/generator.hpp"
#include "benchgen/suite.hpp"
#include "check/lint.hpp"
#include "mapping/lut_mapper.hpp"
#include "sim/eqclass.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace simgen {
namespace {

using net::Network;
using net::NodeId;

/// a, b, c -> g1 = a & b, g2 = g1 ^ c -> out. Clean by construction.
Network make_fixture() {
  Network network("lint_fixture");
  const NodeId a = network.add_pi("a");
  const NodeId b = network.add_pi("b");
  const NodeId c = network.add_pi("c");
  const std::array<NodeId, 2> f1{a, b};
  const NodeId g1 = network.add_lut(f1, tt::TruthTable::and_gate(2), "g1");
  const std::array<NodeId, 2> f2{g1, c};
  const NodeId g2 = network.add_lut(f2, tt::TruthTable::xor_gate(2), "g2");
  network.add_po(g2, "out");
  return network;
}

TEST(Lint, CleanNetworkHasNoIssues) {
  const Network network = make_fixture();
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NO_THROW(network.check_invariants());
}

TEST(Lint, RegistryNamesAreUniqueAndDescribed) {
  const auto lints = check::network_lints();
  EXPECT_GE(lints.size(), 9u);
  for (std::size_t i = 0; i < lints.size(); ++i) {
    EXPECT_FALSE(lints[i].name.empty());
    EXPECT_FALSE(lints[i].description.empty());
    for (std::size_t j = i + 1; j < lints.size(); ++j)
      EXPECT_NE(lints[i].name, lints[j].name);
  }
}

TEST(Lint, UnknownCheckNameIsReported) {
  const Network network = make_fixture();
  const std::array<std::string_view, 1> names{"no-such-check"};
  const check::LintReport report = check::lint_network(network, names);
  EXPECT_TRUE(report.fired("registry"));
  EXPECT_TRUE(report.has_errors());
}

TEST(Lint, TopoOrderFiresOnBackEdge) {
  Network network = make_fixture();
  // Point g1 (node 3) at g2 (node 4): a back edge, i.e. a cycle.
  network.mutable_node(NodeId{3}).fanins[0] = NodeId{4};
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("topo-order")) << report.to_string();
  EXPECT_THROW(network.check_invariants(), std::logic_error);
}

TEST(Lint, SymmetryFiresOnDroppedFanout) {
  Network network = make_fixture();
  network.mutable_node(NodeId{0}).fanouts.clear();  // PI a forgets its reader g1.
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("fanin-fanout-symmetry")) << report.to_string();
}

TEST(Lint, KindShapeFiresOnSourceWithFanin) {
  Network network = make_fixture();
  network.mutable_node(NodeId{1}).fanins.push_back(NodeId{0});  // PI b grows a fanin.
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("kind-shape")) << report.to_string();
}

TEST(Lint, KindShapeFiresOnWidePo) {
  Network network = make_fixture();
  network.mutable_node(NodeId{5}).fanins.push_back(NodeId{3});  // PO reads two drivers.
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("kind-shape")) << report.to_string();
}

TEST(Lint, LutArityFiresOnTableMismatch) {
  Network network = make_fixture();
  // Swap g1's 2-input AND for a 3-input one without adding a fanin.
  network.mutable_node(NodeId{3}).function = tt::TruthTable::and_gate(3);
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("lut-arity")) << report.to_string();
}

TEST(Lint, LevelMonotoneFiresOnStaleCache) {
  Network network = make_fixture();
  // Warm the level cache, then splice g2's fanin from g1 to PI a. The
  // recomputed level of g2 drops, but the cache still claims depth 2.
  ASSERT_EQ(network.level(NodeId{4}), 2u);
  network.mutable_node(NodeId{4}).fanins[0] = NodeId{0};
  network.mutable_node(NodeId{0}).fanouts.push_back(NodeId{4});
  auto& old_fanouts = network.mutable_node(NodeId{3}).fanouts;
  old_fanouts.erase(std::find(old_fanouts.begin(), old_fanouts.end(), NodeId{4}));
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("level-monotone")) << report.to_string();
}

TEST(Lint, IoListsFireOnRetypedPi) {
  Network network = make_fixture();
  // Retype PI c as a constant: the PI list now names a non-PI node.
  network.mutable_node(NodeId{2}).kind = net::NodeKind::kConstant;
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("io-lists")) << report.to_string();
}

TEST(Lint, ConstCanonicalFiresOnDuplicateConstant) {
  Network network;
  network.add_constant(false);
  const NodeId pi = network.add_pi("a");
  network.add_po(pi);
  // Retype the PI into a second constant-0 node.
  network.mutable_node(NodeId{1}).kind = net::NodeKind::kConstant;
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("const-canonical")) << report.to_string();
}

TEST(Lint, DanglingIsAWarningNotAnError) {
  Network network = make_fixture();
  const std::array<NodeId, 2> fanins{NodeId{0}, NodeId{1}};
  network.add_lut(fanins, tt::TruthTable::or_gate(2), "dead");
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("dangling")) << report.to_string();
  EXPECT_FALSE(report.has_errors());
  // check_invariants only rejects errors; dead logic is legal.
  EXPECT_NO_THROW(network.check_invariants());
}

TEST(Lint, DuplicateFaninIsAWarningNotAnError) {
  Network network;
  const NodeId a = network.add_pi("a");
  const std::array<NodeId, 2> fanins{a, a};
  const NodeId g = network.add_lut(fanins, tt::TruthTable::and_gate(2), "g");
  network.add_po(g);
  const check::LintReport report = check::lint_network(network);
  EXPECT_TRUE(report.fired("duplicate-fanin")) << report.to_string();
  EXPECT_FALSE(report.has_errors());
}

TEST(Lint, GeneratedAigIsStrashCanonical) {
  benchgen::CircuitSpec spec;
  spec.name = "lint_aig";
  spec.num_pis = 8;
  spec.num_pos = 4;
  spec.num_gates = 150;
  const aig::Aig graph = benchgen::generate_circuit(spec);
  const check::LintReport report = check::lint_aig(graph);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Lint, EqclassChecksFireOnCorruptPartitions) {
  const Network network = make_fixture();  // LUTs are nodes 3 and 4.

  // Singleton class.
  auto singleton = sim::EquivClasses::from_classes({{NodeId{3}}});
  EXPECT_TRUE(check::lint_eqclasses(singleton, network).fired("eqclass-min-size"));

  // Non-LUT and out-of-range members.
  auto bad_members = sim::EquivClasses::from_classes({{NodeId{0}, NodeId{99}}});
  const check::LintReport members_report =
      check::lint_eqclasses(bad_members, network);
  EXPECT_TRUE(members_report.fired("eqclass-members"));

  // Overlapping classes.
  auto overlap = sim::EquivClasses::from_classes({{NodeId{3}, NodeId{4}}, {NodeId{4}, NodeId{3}}});
  EXPECT_TRUE(check::lint_eqclasses(overlap, network).fired("eqclass-disjoint"));
}

TEST(Lint, EqclassHomogeneityNeedsMatchingSignatures) {
  const Network network = make_fixture();
  sim::Simulator simulator(network);
  simulator.simulate_random_word(7, 0);
  // g1 = a & b and g2 = g1 ^ c differ on random patterns with
  // overwhelming probability; a class holding both is not homogeneous.
  auto classes = sim::EquivClasses::from_classes({{NodeId{3}, NodeId{4}}});
  ASSERT_NE(simulator.value(NodeId{3}), simulator.value(NodeId{4}));
  const check::LintReport report =
      check::lint_eqclasses(classes, network, &simulator);
  EXPECT_TRUE(report.fired("eqclass-homogeneous")) << report.to_string();
  // Without a simulator the same partition is structurally fine.
  EXPECT_TRUE(check::lint_eqclasses(classes, network).ok());
}

TEST(Lint, SeedBenchmarksAreErrorFree) {
  for (const char* name : {"alu4", "apex2", "cps"}) {
    const benchgen::CircuitSpec* spec = benchgen::find_benchmark(name);
    ASSERT_NE(spec, nullptr) << name;
    const aig::Aig graph = benchgen::generate_circuit(*spec);
    EXPECT_TRUE(check::lint_aig(graph).ok()) << name;
    const Network network = mapping::map_to_luts(graph);
    const check::LintReport report = check::lint_network(network);
    EXPECT_EQ(report.num_errors(), 0u) << name << ":\n" << report.to_string();
  }
}

}  // namespace
}  // namespace simgen
